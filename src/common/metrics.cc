#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace seraph {

namespace {

// Index of the bucket holding `value`: floor(log2(max(value, 1))).
int BucketIndex(int64_t value) {
  if (value < 1) value = 1;
  int index = 0;
  while (value > 1 && index < Histogram::kBuckets - 1) {
    value >>= 1;
    ++index;
  }
  return index;
}

int64_t BucketLow(int index) { return int64_t{1} << index; }

}  // namespace

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  ++buckets_[BucketIndex(value)];
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  sum_ += value;
  ++count_;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = 0;
  max_ = 0;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) return 0;
  double target = p * static_cast<double>(count_);
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (static_cast<double>(seen + buckets_[i]) >= target) {
      // Linear interpolation within the bucket [2^i, 2^(i+1)).
      double into = (target - static_cast<double>(seen)) /
                    static_cast<double>(buckets_[i]);
      double low = static_cast<double>(BucketLow(i));
      int64_t estimate = static_cast<int64_t>(low + into * low);
      return std::clamp(estimate, min_, max_);
    }
    seen += buckets_[i];
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_;
  snap.min = min_;
  snap.max = max_;
  snap.mean = count_ == 0 ? 0.0
                          : static_cast<double>(sum_) /
                                static_cast<double>(count_);
  snap.p50 = Percentile(0.50);
  snap.p90 = Percentile(0.90);
  snap.p99 = Percentile(0.99);
  return snap;
}

std::string HistogramSnapshot::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f min=%lld p50=%lld p90=%lld p99=%lld "
                "max=%lld",
                static_cast<long long>(count), mean,
                static_cast<long long>(min), static_cast<long long>(p50),
                static_cast<long long>(p90), static_cast<long long>(p99),
                static_cast<long long>(max));
  return buf;
}

}  // namespace seraph
