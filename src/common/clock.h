// Injectable microsecond clocks for latency accounting.
//
// The emit-latency layer (docs/INTERNALS.md, "Latency accounting & lag")
// stamps every stream element with an arrival time at ingestion and reads
// the clock again at sink delivery; the difference is the element's
// ingest→emit latency. Both reads go through a `Clock` so tests can
// substitute a `ManualClock` and assert exact histogram contents without
// wall-clock sleeps.
//
// `Clock::Steady()` shares the timebase of `TraceRecorder::NowMicros`
// (std::chrono::steady_clock microseconds): stamps taken by an EventQueue
// and latencies computed inside the engine subtract cleanly, and latency
// samples line up with trace spans.
#ifndef SERAPH_COMMON_CLOCK_H_
#define SERAPH_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace seraph {

// A monotonic microsecond clock. Implementations must be safe to read
// from multiple threads.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowMicros() const = 0;

  // The process-wide steady clock (std::chrono::steady_clock, the same
  // timebase as TraceRecorder::NowMicros). Never null.
  static const Clock* Steady();
};

// Real time: steady_clock microseconds since an arbitrary epoch
// (differences are meaningful, absolute values are not).
class SteadyClock final : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

inline const Clock* Clock::Steady() {
  static const SteadyClock* kSteady = new SteadyClock();
  return kSteady;
}

// A hand-driven clock for deterministic latency tests: Set/Advance move
// time, NowMicros reads it. Atomic so a test can tick it while a server
// thread reads.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(int64_t now_micros = 0) : now_(now_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void Set(int64_t now_micros) {
    now_.store(now_micros, std::memory_order_relaxed);
  }
  void Advance(int64_t delta_micros) {
    now_.fetch_add(delta_micros, std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace seraph

#endif  // SERAPH_COMMON_CLOCK_H_
