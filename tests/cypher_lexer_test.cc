#include <gtest/gtest.h>

#include "cypher/lexer.h"

namespace seraph {
namespace {

std::vector<Token> Lex(std::string_view text) {
  auto tokens = Tokenize(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? tokens.value() : std::vector<Token>{};
}

TEST(LexerTest, Identifiers) {
  auto tokens = Lex("MATCH rentedAt _x a1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "MATCH");
  EXPECT_EQ(tokens[3].text, "a1");
  EXPECT_EQ(tokens[4].kind, TokenKind::kEnd);
}

TEST(LexerTest, BackquotedIdentifier) {
  auto tokens = Lex("(`E-Bike`)");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "E-Bike");
}

TEST(LexerTest, Numbers) {
  auto tokens = Lex("42 1.5 .25 2e3 1e-2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 1.5);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 0.25);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 2000.0);
  EXPECT_DOUBLE_EQ(tokens[4].float_value, 0.01);
}

TEST(LexerTest, IntegerFollowedByRange) {
  // "3.." must lex as integer 3 then '..' (variable-length bounds).
  auto tokens = Lex("*3..5");
  ASSERT_GE(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kStar);
  EXPECT_EQ(tokens[1].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[1].int_value, 3);
  EXPECT_EQ(tokens[2].kind, TokenKind::kDotDot);
  EXPECT_EQ(tokens[3].int_value, 5);
}

TEST(LexerTest, Strings) {
  auto tokens = Lex(R"('abc' "d\'e" 'x\\y')");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].text, "d'e");
  EXPECT_EQ(tokens[2].text, "x\\y");
}

TEST(LexerTest, Operators) {
  auto tokens = Lex("<= >= <> < > = .. . | + - * / % ^");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds[0], TokenKind::kLe);
  EXPECT_EQ(kinds[1], TokenKind::kGe);
  EXPECT_EQ(kinds[2], TokenKind::kNeq);
  EXPECT_EQ(kinds[3], TokenKind::kLt);
  EXPECT_EQ(kinds[4], TokenKind::kGt);
  EXPECT_EQ(kinds[5], TokenKind::kEq);
  EXPECT_EQ(kinds[6], TokenKind::kDotDot);
  EXPECT_EQ(kinds[7], TokenKind::kDot);
  EXPECT_EQ(kinds[8], TokenKind::kPipe);
}

TEST(LexerTest, Comments) {
  auto tokens = Lex("a // line comment\n b /* block \n comment */ c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].text, "c");
}

TEST(LexerTest, Parameters) {
  auto tokens = Lex("$user_id");
  EXPECT_EQ(tokens[0].kind, TokenKind::kParameter);
  EXPECT_EQ(tokens[0].text, "user_id");
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = Lex("a\n  b");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("'unterminated").ok());
  EXPECT_FALSE(Tokenize("/* unterminated").ok());
  EXPECT_FALSE(Tokenize("a ? b").ok());
  EXPECT_FALSE(Tokenize("$1").ok());
}

TEST(LexerTest, FullQueryTokenizes) {
  auto tokens = Lex(
      "MATCH (b:Bike)-[r:rentedAt]->(s:Station), "
      "q = (b)-[:returnedAt|rentedAt*3..]-(o:Station) "
      "WHERE ALL(e IN relationships(q) WHERE e.user_id = r.user_id) "
      "RETURN r.user_id, s.id");
  EXPECT_GT(tokens.size(), 40u);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

}  // namespace
}  // namespace seraph
