// End-to-end comparison of the two window semantics (DESIGN.md §2): the
// default lookback semantics matches the paper's worked examples; the
// literal Def. 5.9/5.11 forward semantics annotates different windows and
// is causally clamped (an evaluation never sees elements that arrive
// after its instant, even when the formal window extends past it).
#include <gtest/gtest.h>

#include "seraph/continuous_engine.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

Timestamp Clock(int hour, int minute) {
  return Timestamp::FromCivil(2022, 10, 14, hour, minute).value();
}

class WindowSemanticsAblation : public ::testing::Test {
 protected:
  void Run(WindowSemantics semantics) {
    EngineOptions options;
    options.semantics = semantics;
    engine_ = std::make_unique<ContinuousEngine>(options);
    engine_->AddSink(&sink_);
    ASSERT_TRUE(
        engine_->RegisterText(workloads::RunningExampleSeraphQuery()).ok());
    for (const auto& event : workloads::BuildRunningExampleStream()) {
      ASSERT_TRUE(engine_->Ingest(event.graph, event.timestamp).ok());
    }
    ASSERT_TRUE(engine_->AdvanceTo(Clock(15, 40)).ok());
  }

  std::unique_ptr<ContinuousEngine> engine_;
  CollectingSink sink_;
};

TEST_F(WindowSemanticsAblation, LookbackAnnotatesTrailingWindows) {
  Run(WindowSemantics::kLookback);
  auto at1515 = sink_.ResultAt("student_trick", Clock(15, 15));
  ASSERT_TRUE(at1515.has_value());
  EXPECT_EQ(at1515->window.start, Clock(14, 15));
  EXPECT_EQ(at1515->window.end, Clock(15, 15));
}

TEST_F(WindowSemanticsAblation, PaperFormalAnnotatesForwardWindows) {
  Run(WindowSemantics::kPaperFormal);
  // At 15:15 the earliest Def. 5.9 window containing it is
  // [14:45, 15:45) — the paper's formal reading, not its examples'.
  auto at1515 = sink_.ResultAt("student_trick", Clock(15, 15));
  ASSERT_TRUE(at1515.has_value());
  EXPECT_EQ(at1515->window.start, Clock(14, 45));
  EXPECT_EQ(at1515->window.end, Clock(15, 45));
}

TEST_F(WindowSemanticsAblation, PaperFormalIsCausallyClamped) {
  Run(WindowSemantics::kPaperFormal);
  // The 15:15 window formally extends to 15:45 and would cover the events
  // arriving at 15:20/15:40 (which complete user 5678's pattern) — but
  // those have not arrived at 15:15, so they must not be visible yet.
  auto at1515 = sink_.ResultAt("student_trick", Clock(15, 15));
  ASSERT_TRUE(at1515.has_value());
  for (const Record& row : at1515->table.rows()) {
    EXPECT_EQ(row.GetOrNull("r.user_id"), Value::Int(1234));
  }
  // User 5678's match appears only once its events have arrived.
  bool seen_5678 = false;
  for (const auto& entry :
       sink_.ResultsFor("student_trick").entries()) {
    for (const Record& row : entry.table.rows()) {
      if (row.GetOrNull("r.user_id") == Value::Int(5678)) seen_5678 = true;
    }
  }
  EXPECT_TRUE(seen_5678);
}

TEST_F(WindowSemanticsAblation, BothFindBothFraudulentUsers) {
  for (WindowSemantics semantics :
       {WindowSemantics::kLookback, WindowSemantics::kPaperFormal}) {
    sink_ = CollectingSink();
    Run(semantics);
    std::set<int64_t> users;
    for (const auto& entry :
         sink_.ResultsFor("student_trick").entries()) {
      for (const Record& row : entry.table.rows()) {
        users.insert(row.GetOrNull("r.user_id").AsInt());
      }
    }
    EXPECT_EQ(users, (std::set<int64_t>{1234, 5678}))
        << "semantics=" << static_cast<int>(semantics);
  }
}

}  // namespace
}  // namespace seraph
