// The sharded serving tier (src/shard/): pluggable partitioners, query
// placement over the shard set the partitioners imply, deterministic
// (t, query, shard)-ordered merge, fleet health gauges, and coordinated
// in-memory capture/restore. The randomized sharded-vs-single oracle
// lives in tests/sharded_equivalence_test.cc; this file pins the unit
// behaviors the oracle builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "io/json.h"
#include "seraph/continuous_engine.h"
#include "shard/partitioner.h"
#include "shard/sharded_engine.h"

namespace seraph {
namespace shard {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id) {
  return GraphBuilder().Node(id, {"X"}, {{"id", Value::Int(id)}}).Build();
}

PropertyGraph Labeled(const std::string& label, int64_t id) {
  return GraphBuilder().Node(id, {label}, {{"id", Value::Int(id)}}).Build();
}

// Records the merged fleet output exactly as delivered: one entry per
// emission, in arrival order, capturing the (t, query) key the merge
// contract sorts by.
class OrderSink final : public EmitSink {
 public:
  struct Entry {
    int64_t t_millis;
    std::string query;
    std::string json;
  };

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override {
    entries_.push_back(
        Entry{evaluation_time.millis(), query_name, io::ToJson(table)});
    return Status::OK();
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

// ---------------------------------------------------------------------------
// Partitioners
// ---------------------------------------------------------------------------

TEST(PartitionerTest, StableHashIsStableAcrossCallsAndOverloads) {
  // FNV-1a 64-bit offset basis: the hash of the empty string. Pinning
  // the constant pins the whole function — shard assignment must
  // survive restarts and match across builds.
  EXPECT_EQ(StableHash64(std::string()), 14695981039346656037ull);
  const std::string text = "seraph-query-name";
  EXPECT_EQ(StableHash64(text), StableHash64(text));
  EXPECT_EQ(StableHash64(text), StableHash64(text.data(), text.size()));
  EXPECT_NE(StableHash64(text), StableHash64(std::string("other")));
}

TEST(PartitionerTest, BroadcastCoversEveryShard) {
  auto partitioner = Broadcast();
  const PropertyGraph graph = Item(1);
  EXPECT_EQ(partitioner->ShardsFor(graph, T(1), 1), (std::vector<int>{0}));
  EXPECT_EQ(partitioner->ShardsFor(graph, T(1), 4),
            (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(partitioner->placement(4).kind, PlacementKind::kBroadcast);
  EXPECT_STREQ(partitioner->name(), "broadcast");
}

TEST(PartitionerTest, FixedShardClampsOutOfRangeIndexes) {
  const PropertyGraph graph = Item(1);
  EXPECT_EQ(FixedShard(2)->ShardsFor(graph, T(1), 4), (std::vector<int>{2}));
  EXPECT_EQ(FixedShard(2)->placement(4).fixed_shard, 2);
  EXPECT_EQ(FixedShard(2)->placement(4).kind, PlacementKind::kFixed);
  // A mis-sized fleet still routes somewhere deterministic.
  EXPECT_EQ(FixedShard(7)->ShardsFor(graph, T(1), 4), (std::vector<int>{3}));
  EXPECT_EQ(FixedShard(7)->placement(4).fixed_shard, 3);
  EXPECT_EQ(FixedShard(-1)->ShardsFor(graph, T(1), 4), (std::vector<int>{0}));
}

TEST(PartitionerTest, HashByNodeIdIsDeterministicAndCoLocating) {
  auto partitioner = HashByNodeId();
  // Single shard: trivially fixed.
  EXPECT_EQ(partitioner->ShardsFor(Item(9), T(1), 1), (std::vector<int>{0}));
  EXPECT_EQ(partitioner->placement(1).kind, PlacementKind::kFixed);
  EXPECT_EQ(partitioner->placement(4).kind, PlacementKind::kScattered);
  // Deterministic, in range, and keyed by the smallest node id: a graph
  // containing nodes {5, 9} lands where the anchor node 5 lands.
  for (int64_t id = 1; id <= 64; ++id) {
    auto shards = partitioner->ShardsFor(Item(id), T(1), 4);
    ASSERT_EQ(shards.size(), 1u);
    EXPECT_GE(shards[0], 0);
    EXPECT_LT(shards[0], 4);
    EXPECT_EQ(shards, partitioner->ShardsFor(Item(id), T(99), 4));
  }
  const PropertyGraph pair = GraphBuilder()
                                 .Node(5, {"X"})
                                 .Node(9, {"X"})
                                 .Rel(1, 5, 9, "linked")
                                 .Build();
  EXPECT_EQ(partitioner->ShardsFor(pair, T(1), 4),
            partitioner->ShardsFor(Item(5), T(1), 4));
  // An element with no nodes hashes to shard 0.
  EXPECT_EQ(partitioner->ShardsFor(PropertyGraph(), T(1), 4),
            (std::vector<int>{0}));
}

// ---------------------------------------------------------------------------
// Query placement
// ---------------------------------------------------------------------------

std::string CountQuery(const std::string& name, const std::string& from) {
  return "REGISTER QUERY " + name +
         " STARTING AT '1970-01-01T00:05' { MATCH (n:X) WITHIN PT30M" +
         (from.empty() ? "" : " FROM " + from) +
         " EMIT n.id SNAPSHOT EVERY PT5M }";
}

TEST(ShardedEngineTest, BroadcastQueriesGetOneStableHomeShard) {
  ShardedEngineOptions options;
  options.shards = 4;
  ShardedEngine fleet(options);
  for (const std::string name : {"qa", "qb", "qc", "qd", "qe"}) {
    auto placement = fleet.RegisterText(CountQuery(name, ""));
    ASSERT_TRUE(placement.ok()) << placement.status();
    ASSERT_EQ(placement->shards.size(), 1u) << name;
    // Home = stable hash of the name — independent of registration order
    // and process, so a restart re-derives the same placement.
    EXPECT_EQ(placement->shards[0],
              static_cast<int>(StableHash64(name) % 4u));
    auto back = fleet.PlacementFor(name);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->shards, placement->shards);
  }
  EXPECT_EQ(fleet.QueryNames().size(), 5u);
  EXPECT_EQ(fleet.RegisterText(CountQuery("qa", "")).status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(fleet.PlacementFor("ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(ShardedEngineTest, PlacementFollowsPartitionersAndRejectsConflicts) {
  ShardedEngineOptions options;
  options.shards = 3;
  ShardedEngine fleet(options);
  fleet.AddRoute("left", HasLabel("L"), FixedShard(0));
  fleet.AddRoute("right", HasLabel("R"), FixedShard(2));
  fleet.AddRoute("scatter", AcceptAll(), HashByNodeId());

  auto left = fleet.RegisterText(
      "REGISTER QUERY q_left STARTING AT '1970-01-01T00:05' "
      "{ MATCH (n:L) WITHIN PT30M FROM left EMIT n.id EVERY PT5M }");
  ASSERT_TRUE(left.ok()) << left.status();
  EXPECT_EQ(left->shards, (std::vector<int>{0}));

  // A scattered stream forces every shard (union semantics).
  auto scattered = fleet.RegisterText(
      "REGISTER QUERY q_scatter STARTING AT '1970-01-01T00:05' "
      "{ MATCH (n:X) WITHIN PT30M FROM scatter EMIT n.id EVERY PT5M }");
  ASSERT_TRUE(scattered.ok()) << scattered.status();
  EXPECT_EQ(scattered->shards, (std::vector<int>{0, 1, 2}));

  // Two streams pinned to different shards: no shard sees both.
  auto conflict = fleet.RegisterText(
      "REGISTER QUERY q_conflict STARTING AT '1970-01-01T00:05' {"
      " MATCH (a:L) WITHIN PT30M FROM left"
      " MATCH (b:R) WITHIN PT30M FROM right"
      " EMIT a.id EVERY PT5M }");
  EXPECT_EQ(conflict.status().code(), StatusCode::kInvalidArgument);

  // Scattered + fixed: likewise impossible on one shard.
  auto mixed = fleet.RegisterText(
      "REGISTER QUERY q_mixed STARTING AT '1970-01-01T00:05' {"
      " MATCH (a:X) WITHIN PT30M FROM scatter"
      " MATCH (b:L) WITHIN PT30M FROM left"
      " EMIT a.id EVERY PT5M }");
  EXPECT_EQ(mixed.status().code(), StatusCode::kInvalidArgument);
  // Failed registrations left nothing behind.
  EXPECT_EQ(fleet.PlacementFor("q_conflict").status().code(),
            StatusCode::kNotFound);

  // A stream nothing routes into is empty everywhere; the query still
  // gets a broadcast-style home instead of failing.
  auto ghost = fleet.RegisterText(
      "REGISTER QUERY q_ghost STARTING AT '1970-01-01T00:05' "
      "{ MATCH (n:X) WITHIN PT30M FROM nowhere EMIT n.id EVERY PT5M }");
  ASSERT_TRUE(ghost.ok()) << ghost.status();
  EXPECT_EQ(ghost->shards.size(), 1u);
}

// ---------------------------------------------------------------------------
// Ingest routing, merge order, gauges
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, MergedOutputIsOrderedByTimeThenQuery) {
  ShardedEngineOptions options;
  options.shards = 2;
  ShardedEngine fleet(options);
  // Pinned sub-streams on different shards, plus the default broadcast
  // route, which keeps both shard clocks advancing on every element.
  fleet.AddRoute("left", HasLabel("L"), FixedShard(0));
  fleet.AddRoute("right", HasLabel("R"), FixedShard(1));
  ASSERT_TRUE(fleet
                  .RegisterText(
                      "REGISTER QUERY a_left STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:L) WITHIN PT30M FROM left EMIT n.id "
                      "SNAPSHOT EVERY PT5M }")
                  .ok());
  ASSERT_TRUE(fleet
                  .RegisterText(
                      "REGISTER QUERY b_right STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:R) WITHIN PT30M FROM right EMIT n.id "
                      "SNAPSHOT EVERY PT5M }")
                  .ok());
  OrderSink sink;
  fleet.AddSink(&sink);

  for (int i = 0; i < 12; ++i) {
    // Alternate partitions; timestamps strictly increasing.
    const PropertyGraph graph =
        (i % 2 == 0) ? Labeled("L", 100 + i) : Labeled("R", 200 + i);
    auto delivered = fleet.Ingest(graph, T(1 + i));
    ASSERT_TRUE(delivered.ok()) << delivered.status();
    // Default broadcast (2 shards) + the matching pinned lane.
    EXPECT_EQ(*delivered, 3);
    ASSERT_TRUE(fleet.PumpAll().ok());
  }
  ASSERT_TRUE(fleet.Finish().ok());

  ASSERT_FALSE(sink.entries().empty());
  EXPECT_EQ(fleet.released_total(),
            static_cast<int64_t>(sink.entries().size()));
  for (size_t i = 1; i < sink.entries().size(); ++i) {
    const OrderSink::Entry& prev = sink.entries()[i - 1];
    const OrderSink::Entry& curr = sink.entries()[i];
    // Non-decreasing time; ties broken by query name ("a_left" before
    // "b_right") — the deterministic merge contract.
    EXPECT_TRUE(prev.t_millis < curr.t_millis ||
                (prev.t_millis == curr.t_millis && prev.query <= curr.query))
        << "entry " << i << ": (" << prev.t_millis << "," << prev.query
        << ") then (" << curr.t_millis << "," << curr.query << ")";
  }
  // Both queries actually emitted.
  EXPECT_TRUE(std::any_of(sink.entries().begin(), sink.entries().end(),
                          [](const auto& e) { return e.query == "a_left"; }));
  EXPECT_TRUE(std::any_of(sink.entries().begin(), sink.entries().end(),
                          [](const auto& e) { return e.query == "b_right"; }));

  // The health surface: per-shard and fleet watermarks agree at the last
  // ingested instant, and the fleet watermark is the slowest shard's.
  EXPECT_EQ(fleet.FleetWatermarkMillis(), T(12).millis());
  const Gauge* fleet_gauge =
      fleet.metrics().FindGauge("seraph_fleet_watermark_millis", {});
  ASSERT_NE(fleet_gauge, nullptr);
  EXPECT_EQ(fleet_gauge->value(), T(12).millis());
  for (const std::string shard : {"0", "1"}) {
    const Gauge* gauge = fleet.metrics().FindGauge(
        "seraph_shard_watermark_millis", {{"shard", shard}});
    ASSERT_NE(gauge, nullptr);
    EXPECT_EQ(gauge->value(), T(12).millis());
  }
}

TEST(ShardedEngineTest, UnroutedElementsAreCountedAsDropped) {
  ShardedEngineOptions options;
  options.shards = 2;
  ShardedEngine fleet(options);
  // Replace the default catch-all: only L-labeled elements route.
  fleet.AddRoute("", HasLabel("L"), Broadcast());
  auto routed = fleet.Ingest(Labeled("L", 1), T(1));
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(*routed, 2);  // Broadcast to both shards.
  auto dropped = fleet.Ingest(Labeled("M", 2), T(2));
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(*dropped, 0);
  const Counter* counter =
      fleet.metrics().FindCounter("seraph_router_dropped_total", {});
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value(), 1);
  const Counter* routed_counter = fleet.metrics().FindCounter(
      "seraph_router_routed_total", {{"stream", "<default>"}});
  ASSERT_NE(routed_counter, nullptr);
  EXPECT_EQ(routed_counter->value(), 2);  // One element, two shards.
}

// ---------------------------------------------------------------------------
// Cross-shard stats, disable/revive, capture/restore
// ---------------------------------------------------------------------------

TEST(ShardedEngineTest, ScatteredQueryStatsSumAndReviveSpansShards) {
  ShardedEngineOptions options;
  options.shards = 2;
  options.engine.query_error_budget = 2;
  ShardedEngine fleet(options);
  fleet.AddRoute("scatter", AcceptAll(), HashByNodeId());
  // Division by zero fails every evaluation with an element in window;
  // the budget disables the query on each shard independently.
  auto placement = fleet.RegisterText(
      "REGISTER QUERY flaky STARTING AT '1970-01-01T00:05' "
      "{ MATCH (n:X) WITHIN PT30M FROM scatter EMIT n.id / 0 EVERY PT5M }");
  ASSERT_TRUE(placement.ok()) << placement.status();
  ASSERT_EQ(placement->shards, (std::vector<int>{0, 1}));

  // Enough elements that both shards hold at least one (ids 1..8 spread
  // by hash), then enough evaluations to exhaust both budgets.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(fleet.Ingest(Item(i + 1), T(1 + i)).ok());
    ASSERT_TRUE(fleet.PumpAll().ok());
  }
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fleet.Ingest(Item(100 + i), T(10 + 5 * i)).ok());
    ASSERT_TRUE(fleet.PumpAll().ok());
  }
  EXPECT_TRUE(fleet.QueryDisabled("flaky"));
  auto stats = fleet.StatsFor("flaky");
  ASSERT_TRUE(stats.ok());
  // Summed across both placement shards: strictly more failures than any
  // single shard's budget allows.
  EXPECT_GE(stats->eval_failures, 4);
  EXPECT_FALSE(stats->last_error.ok());

  ASSERT_TRUE(fleet.ReviveQuery("flaky").ok());
  EXPECT_FALSE(fleet.QueryDisabled("flaky"));
  EXPECT_FALSE(fleet.ReviveQuery("ghost").ok());

  const std::string json = fleet.QueriesStatusJson();
  EXPECT_NE(json.find("\"name\":\"flaky\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards\":[0,1]"), std::string::npos) << json;
}

TEST(ShardedEngineTest, CaptureRestoreSplitRunConcatenatesExactly) {
  auto make_fleet = [](OrderSink* sink) {
    ShardedEngineOptions options;
    options.shards = 2;
    auto fleet = std::make_unique<ShardedEngine>(options);
    if (sink != nullptr) fleet->AddSink(sink);
    EXPECT_TRUE(fleet->RegisterText(CountQuery("q", "")).ok());
    return fleet;
  };

  // The uninterrupted run.
  OrderSink oracle;
  auto full = make_fleet(&oracle);
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(full->Ingest(Item(i + 1), T(1 + 2 * i)).ok());
    ASSERT_TRUE(full->PumpAll().ok());
  }
  ASSERT_TRUE(full->Finish().ok());
  ASSERT_FALSE(oracle.entries().empty());

  // The split run: capture after the prefix, restore into a fresh fleet,
  // continue with the suffix.
  OrderSink prefix_sink;
  auto first = make_fleet(&prefix_sink);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(first->Ingest(Item(i + 1), T(1 + 2 * i)).ok());
    ASSERT_TRUE(first->PumpAll().ok());
  }
  std::vector<EngineCheckpoint> images = first->CaptureCheckpoints();
  ASSERT_EQ(images.size(), 2u);

  OrderSink suffix_sink;
  auto second = make_fleet(&suffix_sink);
  ASSERT_TRUE(second->RestoreFrom(images).ok());
  // Restoring twice (fleet no longer fresh) is rejected.
  EXPECT_FALSE(second->RestoreFrom(images).ok());
  for (int i = 6; i < 12; ++i) {
    ASSERT_TRUE(second->Ingest(Item(i + 1), T(1 + 2 * i)).ok());
    ASSERT_TRUE(second->PumpAll().ok());
  }
  ASSERT_TRUE(second->Finish().ok());

  // prefix + suffix == oracle, entry for entry.
  ASSERT_EQ(prefix_sink.entries().size() + suffix_sink.entries().size(),
            oracle.entries().size());
  for (size_t i = 0; i < oracle.entries().size(); ++i) {
    const OrderSink::Entry& got =
        i < prefix_sink.entries().size()
            ? prefix_sink.entries()[i]
            : suffix_sink.entries()[i - prefix_sink.entries().size()];
    EXPECT_EQ(got.t_millis, oracle.entries()[i].t_millis) << "entry " << i;
    EXPECT_EQ(got.query, oracle.entries()[i].query) << "entry " << i;
    EXPECT_EQ(got.json, oracle.entries()[i].json) << "entry " << i;
  }
}

}  // namespace
}  // namespace shard
}  // namespace seraph
