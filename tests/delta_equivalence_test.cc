// Delta-vs-full equivalence (docs/INTERNALS.md, "Incremental
// evaluation"): an engine with delta matching enabled must deliver a
// timeline bit-identical — content *and* row order, per emission — to an
// engine that fully re-matches every instant, across query shapes
// (directions, labels, property anchors, path variables, repeated
// variables, WHERE), churn patterns (append-only, hot-set updates,
// relationship rewires, window evictions), report policies, morsel
// parallelism, evaluation deadlines with injected failures, and
// checkpoint/restore.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/fault.h"
#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"

namespace seraph {
namespace {

// Round multiplier for fuzz loops; CI sets SERAPH_FUZZ_ROUNDS to fuzz
// harder under sanitizers without slowing local runs.
int FuzzRounds(int base) {
  if (const char* env = std::getenv("SERAPH_FUZZ_ROUNDS")) {
    long factor = std::strtol(env, nullptr, 10);
    if (factor > 1) return base * static_cast<int>(factor);
  }
  return base;
}

Timestamp T(int64_t minutes) {
  return Timestamp::FromMillis(minutes * 60'000);
}

// One timestamped stream: small graph elements whose node/relationship
// ids are drawn from a bounded universe, so later elements *update*
// earlier entities (labels merge, properties overwrite, relationships
// rewire endpoints) while the sliding window concurrently evicts old
// elements — every dirty-set source the snapshotter can produce.
struct Event {
  int64_t minute;
  PropertyGraph graph;
};

std::vector<Event> ChurnEvents(uint32_t seed, int count) {
  std::mt19937 rng(seed);
  std::vector<Event> events;
  int64_t minute = 0;
  const int64_t node_universe = 30;
  const int64_t rel_universe = 60;
  // A relationship id's endpoints and type are immutable across a stream
  // (the window union rejects conflicts); reusing an id only updates its
  // properties. First use pins the definition.
  struct RelDef {
    int64_t src, trg;
    std::string type;
  };
  std::map<int64_t, RelDef> rel_defs;
  for (int e = 0; e < count; ++e) {
    minute += static_cast<int64_t>(rng() % 3);
    GraphBuilder builder;
    const int nodes = 2 + static_cast<int>(rng() % 4);
    const int rels = 2 + static_cast<int>(rng() % 5);
    std::vector<int64_t> ids;
    for (int i = 0; i < nodes; ++i) {
      int64_t id = 1 + static_cast<int64_t>(rng() % node_universe);
      ids.push_back(id);
      std::vector<std::string> labels;
      switch (rng() % 4) {
        case 0: labels = {"A"}; break;
        case 1: labels = {"B"}; break;
        case 2: labels = {"A", "B"}; break;
        default: break;  // Unlabelled.
      }
      builder.Node(id, labels,
                   {{"v", Value::Int(static_cast<int64_t>(rng() % 10))}});
    }
    std::set<int64_t> used_rel_ids;
    for (int i = 0; i < rels; ++i) {
      int64_t id = 1 + static_cast<int64_t>(rng() % rel_universe);
      if (!used_rel_ids.insert(id).second) continue;  // One id per element.
      auto def = rel_defs.find(id);
      if (def == rel_defs.end()) {
        // Endpoints come from this element's nodes (a graph element must
        // be self-contained); node-id reuse across elements still rewires
        // the merged window graph. Bias towards self-loops occasionally
        // (undirected + repeated-variable shapes hit their special cases).
        int64_t src = ids[rng() % ids.size()];
        int64_t trg = (rng() % 8 == 0) ? src : ids[rng() % ids.size()];
        def = rel_defs
                  .emplace(id, RelDef{src, trg,
                                      (rng() % 3 == 0) ? "S" : "R"})
                  .first;
      } else {
        // Reuse: carry the pinned endpoints into this element (bare-node
        // merges keep it self-contained) and update the payload.
        builder.Node(def->second.src, std::vector<std::string>{});
        builder.Node(def->second.trg, std::vector<std::string>{});
      }
      builder.Rel(id, def->second.src, def->second.trg, def->second.type,
                  {{"w", Value::Int(static_cast<int64_t>(rng() % 5))}});
    }
    events.push_back({minute, builder.Build()});
  }
  return events;
}

// Delta-eligible MATCH shapes (single fixed-length pattern, EMIT): the
// delta path must serve all of these. The trailing two are deliberately
// ineligible (variable-length, aggregation) and exercise the fallback.
struct Shape {
  const char* name;
  const char* body;  // "MATCH ... EMIT ..." without the policy suffix.
};

const Shape kShapes[] = {
    {"hop", "MATCH (a:A)-[r:R]->(b) WITHIN PT10M EMIT a.v AS av, b.v AS bv"},
    {"anchor", "MATCH (a:A {v: 3})-[r]->(b) WITHIN PT10M EMIT b.v AS bv"},
    {"chain",
     "MATCH (a)-[:R]->(b)-[:S]->(c) WITHIN PT15M EMIT a.v AS x, c.v AS z"},
    {"incoming", "MATCH (a:B)<-[r:R]-(b) WITHIN PT10M EMIT a.v AS av"},
    {"undirected", "MATCH (a:B)-[r]-(b) WITHIN PT10M EMIT b.v AS bv"},
    {"path",
     "MATCH p = (a:A)-[r:R]->(b) WITHIN PT10M EMIT length(p) AS l, a.v AS "
     "av"},
    {"selfloop", "MATCH (a)-[r:R]->(a) WITHIN PT10M EMIT a.v AS av"},
    {"filtered",
     "MATCH (a:A)-[r:R]->(b) WITHIN PT10M WHERE a.v < b.v EMIT a.v AS av, "
     "b.v AS bv"},
    {"varlen", "MATCH (a:A)-[rs:R*1..2]->(b) WITHIN PT10M EMIT b.v AS bv"},
    {"agg", "MATCH (a:A)-[r:R]->(b) WITHIN PT10M EMIT count(r) AS c"},
};

const char* const kPolicies[] = {"SNAPSHOT", "ON ENTERING", "ON EXITING"};

std::string QueryText(const Shape& shape, const char* policy,
                      const std::string& suffix) {
  return "REGISTER QUERY " + std::string(shape.name) + suffix +
         " STARTING AT '1970-01-01T00:05' { " + shape.body + " " + policy +
         " EVERY PT5M }";
}

// Every (shape, policy) combination as one registered-query fleet.
std::vector<std::string> FullFleet() {
  std::vector<std::string> fleet;
  for (const Shape& shape : kShapes) {
    for (size_t p = 0; p < 3; ++p) {
      fleet.push_back(
          QueryText(shape, kPolicies[p], "_p" + std::to_string(p)));
    }
  }
  return fleet;
}

std::vector<std::string> FleetNames() {
  std::vector<std::string> names;
  for (const Shape& shape : kShapes) {
    for (size_t p = 0; p < 3; ++p) {
      names.push_back(std::string(shape.name) + "_p" + std::to_string(p));
    }
  }
  return names;
}

using Timeline = std::vector<std::pair<std::string, TimeVaryingTable>>;

Timeline RunEngine(const EngineOptions& options,
                   const std::vector<std::string>& fleet,
                   const std::vector<std::string>& names,
                   const std::vector<Event>& events) {
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  for (const std::string& text : fleet) {
    EXPECT_TRUE(engine.RegisterText(text).ok()) << text;
  }
  for (const Event& event : events) {
    EXPECT_TRUE(engine.Ingest(event.graph, T(event.minute)).ok());
  }
  EXPECT_TRUE(engine.AdvanceTo(T(events.back().minute + 20)).ok());
  Timeline out;
  for (const std::string& name : names) {
    out.emplace_back(name, sink.ResultsFor(name));
  }
  return out;
}

// Table::operator== is bag equality; the delta index promises more —
// the canonical serial emission order — so compare rows elementwise.
void ExpectTimelinesIdentical(const Timeline& full, const Timeline& delta,
                              const std::string& context) {
  ASSERT_EQ(full.size(), delta.size()) << context;
  for (size_t q = 0; q < full.size(); ++q) {
    const TimeVaryingTable& f = full[q].second;
    const TimeVaryingTable& d = delta[q].second;
    ASSERT_EQ(f.size(), d.size()) << context << " " << full[q].first;
    for (size_t i = 0; i < f.entries().size(); ++i) {
      const std::string where = context + " " + full[q].first + " entry " +
                                std::to_string(i);
      EXPECT_EQ(f.entries()[i].window, d.entries()[i].window) << where;
      const Table& ft = f.entries()[i].table;
      const Table& dt = d.entries()[i].table;
      ASSERT_EQ(ft.rows().size(), dt.rows().size()) << where;
      for (size_t r = 0; r < ft.rows().size(); ++r) {
        EXPECT_EQ(ft.rows()[r], dt.rows()[r]) << where << " row " << r;
      }
    }
  }
}

TEST(DeltaEquivalenceTest, TimelineIdenticalAcrossShapesPoliciesAndChurn) {
  const std::vector<std::string> fleet = FullFleet();
  const std::vector<std::string> names = FleetNames();
  for (int round = 0; round < FuzzRounds(3); ++round) {
    std::vector<Event> events =
        ChurnEvents(/*seed=*/101 + static_cast<uint32_t>(round), /*count=*/50);
    EngineOptions full_opts;
    full_opts.delta_matching = false;
    EngineOptions delta_opts;
    delta_opts.delta_matching = true;
    Timeline full = RunEngine(full_opts, fleet, names, events);
    Timeline delta = RunEngine(delta_opts, fleet, names, events);
    ExpectTimelinesIdentical(full, delta,
                             "round " + std::to_string(round));
  }
}

TEST(DeltaEquivalenceTest, IdenticalUnderMorselAndEvalParallelism) {
  // The delta index always reproduces the *serial* canonical order, and
  // the parallel matcher is bit-identical to serial — so a parallel
  // full-rematch engine and a delta engine (whose fallback queries may
  // themselves fan out morsels) must still agree exactly.
  const std::vector<std::string> fleet = FullFleet();
  const std::vector<std::string> names = FleetNames();
  std::vector<Event> events = ChurnEvents(/*seed=*/77, /*count=*/40);
  EngineOptions full_opts;
  full_opts.delta_matching = false;
  full_opts.match_threads = 4;
  full_opts.match_min_seeds = 1;
  full_opts.match_morsel_size = 4;
  full_opts.eval_threads = 4;
  EngineOptions delta_opts = full_opts;
  delta_opts.delta_matching = true;
  Timeline full = RunEngine(full_opts, fleet, names, events);
  Timeline delta = RunEngine(delta_opts, fleet, names, events);
  ExpectTimelinesIdentical(full, delta, "parallel");
}

TEST(DeltaEquivalenceTest, IdenticalAcrossCheckpointRestore) {
  // Delta state is never serialized: a restored engine must rebuild its
  // index and continue emitting exactly what an uninterrupted full
  // engine would. Prefix runs on one delta engine, the suffix on a
  // restored one; the concatenation must equal the one-life full run.
  const std::vector<std::string> fleet = FullFleet();
  const std::vector<std::string> names = FleetNames();
  for (int round = 0; round < FuzzRounds(2); ++round) {
    std::vector<Event> events =
        ChurnEvents(/*seed=*/301 + static_cast<uint32_t>(round), /*count=*/40);
    const int64_t mid = events[events.size() / 2].minute;
    const int64_t end = events.back().minute + 20;

    EngineOptions full_opts;
    full_opts.delta_matching = false;
    ContinuousEngine full(full_opts);
    CollectingSink full_sink;
    full.AddSink(&full_sink);
    for (const std::string& text : fleet) {
      ASSERT_TRUE(full.RegisterText(text).ok());
    }
    for (const Event& event : events) {
      ASSERT_TRUE(full.Ingest(event.graph, T(event.minute)).ok());
    }
    ASSERT_TRUE(full.AdvanceTo(T(mid)).ok());
    ASSERT_TRUE(full.AdvanceTo(T(end)).ok());

    EngineOptions delta_opts;
    delta_opts.delta_matching = true;
    ContinuousEngine first_life(delta_opts);
    CollectingSink first_sink;
    first_life.AddSink(&first_sink);
    for (const std::string& text : fleet) {
      ASSERT_TRUE(first_life.RegisterText(text).ok());
    }
    for (const Event& event : events) {
      if (event.minute > mid) break;
      ASSERT_TRUE(first_life.Ingest(event.graph, T(event.minute)).ok());
    }
    ASSERT_TRUE(first_life.AdvanceTo(T(mid)).ok());
    EngineCheckpoint checkpoint = first_life.CaptureCheckpoint();

    ContinuousEngine second_life(delta_opts);
    CollectingSink second_sink;
    second_life.AddSink(&second_sink);
    for (const std::string& text : fleet) {
      ASSERT_TRUE(second_life.RegisterText(text).ok());
    }
    ASSERT_TRUE(second_life.RestoreFrom(checkpoint).ok());
    for (const Event& event : events) {
      if (event.minute <= mid) continue;
      ASSERT_TRUE(second_life.Ingest(event.graph, T(event.minute)).ok());
    }
    ASSERT_TRUE(second_life.AdvanceTo(T(end)).ok());

    for (const std::string& name : names) {
      const TimeVaryingTable& expected = full_sink.ResultsFor(name);
      const TimeVaryingTable& prefix = first_sink.ResultsFor(name);
      const TimeVaryingTable& suffix = second_sink.ResultsFor(name);
      ASSERT_EQ(expected.size(), prefix.size() + suffix.size())
          << name << " round " << round;
      for (size_t i = 0; i < expected.entries().size(); ++i) {
        const auto& want = expected.entries()[i];
        const auto& got = i < prefix.entries().size()
                              ? prefix.entries()[i]
                              : suffix.entries()[i - prefix.entries().size()];
        const std::string where =
            name + " round " + std::to_string(round) + " entry " +
            std::to_string(i);
        EXPECT_EQ(want.window, got.window) << where;
        ASSERT_EQ(want.table.rows().size(), got.table.rows().size()) << where;
        for (size_t r = 0; r < want.table.rows().size(); ++r) {
          EXPECT_EQ(want.table.rows()[r], got.table.rows()[r])
              << where << " row " << r;
        }
      }
    }
  }
}

class DeltaFaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(DeltaFaultTest, IdenticalAfterInjectedDeadlineFailure) {
  // An injected "eval.deadline" expiry fails one evaluation; the engine
  // invalidates the delta index (it may be mid-repair and has already
  // consumed that advance's dirty sets) and the next instant rebuilds.
  // Both arms see the same deterministic fault schedule, so the
  // timelines — including the gap at the failed instant — must agree.
  const std::vector<std::string> fleet = {QueryText(kShapes[0], "SNAPSHOT",
                                                    "_p0")};
  const std::vector<std::string> names = {"hop_p0"};
  std::vector<Event> events = ChurnEvents(/*seed=*/55, /*count=*/40);
  EngineOptions full_opts;
  full_opts.delta_matching = false;
  full_opts.eval_deadline_millis = 60'000;  // Plumbing only; never expires.
  EngineOptions delta_opts = full_opts;
  delta_opts.delta_matching = true;

  FaultInjector::Global().ArmSchedule("eval.deadline", {3});
  Timeline full = RunEngine(full_opts, fleet, names, events);
  FaultInjector::Global().Reset();
  FaultInjector::Global().ArmSchedule("eval.deadline", {3});
  Timeline delta = RunEngine(delta_opts, fleet, names, events);
  ExpectTimelinesIdentical(full, delta, "fault");
  // The failure actually happened (the timeline is one emission short of
  // the failure-free run).
  FaultInjector::Global().Reset();
  Timeline clean = RunEngine(delta_opts, fleet, names, events);
  EXPECT_EQ(clean[0].second.size(), delta[0].second.size() + 1);
}

TEST(DeltaEquivalenceTest, MetricsDistinguishHitsRebuildsAndFallbacks) {
  EngineOptions options;
  options.delta_matching = true;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  // One eligible query and one ineligible (variable-length) query.
  ASSERT_TRUE(
      engine.RegisterText(QueryText(kShapes[0], "SNAPSHOT", "_m")).ok());
  ASSERT_TRUE(
      engine.RegisterText(QueryText(kShapes[8], "SNAPSHOT", "_m")).ok());
  std::vector<Event> events = ChurnEvents(/*seed=*/9, /*count=*/30);
  for (const Event& event : events) {
    ASSERT_TRUE(engine.Ingest(event.graph, T(event.minute)).ok());
  }
  ASSERT_TRUE(engine.AdvanceTo(T(events.back().minute + 20)).ok());
  auto counter = [&](const char* name, const char* query) {
    return engine.metrics()
        .CounterFor(name, {{"query", query}})
        ->value();
  };
  EXPECT_GT(counter("seraph_delta_hits_total", "hop_m"), 0);
  EXPECT_GT(counter("seraph_delta_rebuilds_total", "hop_m"), 0);
  EXPECT_EQ(counter("seraph_delta_fallbacks_total", "hop_m"), 0);
  EXPECT_EQ(counter("seraph_delta_hits_total", "varlen_m"), 0);
  EXPECT_GT(counter("seraph_delta_fallbacks_total", "varlen_m"), 0);
  // The hit path repaired incrementally: far fewer rebuilds than hits.
  EXPECT_LT(counter("seraph_delta_rebuilds_total", "hop_m"),
            counter("seraph_delta_hits_total", "hop_m"));
}

}  // namespace
}  // namespace seraph
