#include <gtest/gtest.h>

#include "value/value.h"

namespace seraph {
namespace {

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_DOUBLE_EQ(Value::Float(1.5).AsFloat(), 1.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_EQ(Value::Node(NodeId{7}).AsNode().value, 7);
  EXPECT_EQ(Value::Relationship(RelId{9}).AsRelationship().value, 9);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(1), Value::Float(1.0));
  EXPECT_NE(Value::Int(1), Value::Float(1.5));
  EXPECT_EQ(Value::Int(1).Hash(), Value::Float(1.0).Hash());
}

TEST(ValueTest, NullEqualsNullStructurally) {
  // Structural (bag) equality, not ternary logic.
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value::Int(0));
}

TEST(ValueTest, ListAndMapEquality) {
  Value l1 = Value::MakeList({Value::Int(1), Value::String("a")});
  Value l2 = Value::MakeList({Value::Int(1), Value::String("a")});
  Value l3 = Value::MakeList({Value::String("a"), Value::Int(1)});
  EXPECT_EQ(l1, l2);
  EXPECT_NE(l1, l3);
  Value m1 = Value::MakeMap({{"x", Value::Int(1)}});
  Value m2 = Value::MakeMap({{"x", Value::Int(1)}});
  Value m3 = Value::MakeMap({{"x", Value::Int(2)}});
  EXPECT_EQ(m1, m2);
  EXPECT_NE(m1, m3);
}

TEST(ValueTest, PathValue) {
  PathValue p;
  p.nodes = {NodeId{1}, NodeId{2}, NodeId{3}};
  p.rels = {RelId{10}, RelId{11}};
  Value v = Value::Path(p);
  EXPECT_TRUE(v.is_path());
  EXPECT_EQ(v.AsPath().length(), 2);
  EXPECT_EQ(v, Value::Path(p));
}

TEST(ValueTest, CompareOrdersNullLast) {
  EXPECT_LT(Value::Compare(Value::Int(5), Value::Null()), 0);
  EXPECT_LT(Value::Compare(Value::String("z"), Value::Null()), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, CompareNumbersAcrossTypes) {
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Float(1.5)), 0);
  EXPECT_GT(Value::Compare(Value::Float(2.5), Value::Int(2)), 0);
  EXPECT_EQ(Value::Compare(Value::Int(3), Value::Float(3.0)), 0);
}

TEST(ValueTest, CompareListsLexicographically) {
  Value a = Value::MakeList({Value::Int(1), Value::Int(2)});
  Value b = Value::MakeList({Value::Int(1), Value::Int(3)});
  Value c = Value::MakeList({Value::Int(1)});
  EXPECT_LT(Value::Compare(a, b), 0);
  EXPECT_LT(Value::Compare(c, a), 0);
}

TEST(ValueTest, ToStringShapes) {
  EXPECT_EQ(Value::Null().ToString(), "null");
  EXPECT_EQ(Value::Int(7).ToString(), "7");
  EXPECT_EQ(Value::Float(2.0).ToString(), "2.0");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("hi").ToString(), "hi");
  EXPECT_EQ(
      Value::MakeList({Value::Int(2), Value::Int(3)}).ToString(), "[2, 3]");
  EXPECT_EQ(Value::MakeList({Value::String("a")}).ToString(), "['a']");
  EXPECT_EQ(Value::MakeMap({{"k", Value::Int(1)}}).ToString(), "{k: 1}");
}

TEST(ValueTest, TemporalValues) {
  Timestamp t = Timestamp::Parse("2022-10-14T14:40").value();
  Value dt = Value::DateTime(t);
  EXPECT_TRUE(dt.is_datetime());
  EXPECT_EQ(dt.ToString(), "2022-10-14T14:40");
  Value d = Value::Dur(Duration::FromMinutes(5));
  EXPECT_TRUE(d.is_duration());
  EXPECT_EQ(d.ToString(), "PT5M");
  EXPECT_LT(Value::Compare(Value::DateTime(t),
                           Value::DateTime(t + Duration::FromMinutes(1))),
            0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  std::vector<Value> values = {
      Value::Null(),
      Value::Bool(true),
      Value::Int(10),
      Value::Float(10.0),
      Value::String("10"),
      Value::MakeList({Value::Int(1), Value::Null()}),
      Value::MakeMap({{"a", Value::Int(1)}}),
      Value::Node(NodeId{1}),
      Value::Relationship(RelId{1}),
  };
  for (const Value& a : values) {
    for (const Value& b : values) {
      if (a == b) {
        EXPECT_EQ(a.Hash(), b.Hash())
            << a.ToString() << " vs " << b.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace seraph
