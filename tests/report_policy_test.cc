// Report-policy semantics (R3): SNAPSHOT re-emits, ON ENTERING emits the
// bag delta current ∖ previous, ON EXITING emits previous ∖ current; the
// three are related by algebraic invariants tested here over randomized
// streams.
#include <gtest/gtest.h>

#include <random>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

std::string Query(const char* name, const char* policy) {
  std::string q = "REGISTER QUERY ";
  q += name;
  q += " STARTING AT '1970-01-01T00:05' "
       "{ MATCH (n:X) WITHIN PT10M EMIT n.id ";
  q += policy;
  q += " EVERY PT5M }";
  return q;
}

PropertyGraph Item(int64_t id) {
  return GraphBuilder().Node(id, {"X"}, {{"id", Value::Int(id)}}).Build();
}

class PolicyHarness {
 public:
  PolicyHarness() {
    engine_.AddSink(&sink_);
    EXPECT_TRUE(engine_.RegisterText(Query("snap", "SNAPSHOT")).ok());
    EXPECT_TRUE(engine_.RegisterText(Query("enter", "ON ENTERING")).ok());
    EXPECT_TRUE(engine_.RegisterText(Query("exit", "ON EXITING")).ok());
  }

  ContinuousEngine engine_;
  CollectingSink sink_;
};

TEST(ReportPolicyTest, SnapshotRepeatsOnEnteringDedupes) {
  PolicyHarness h;
  ASSERT_TRUE(h.engine_.Ingest(Item(1), T(3)).ok());
  ASSERT_TRUE(h.engine_.AdvanceTo(T(10)).ok());
  // Element @3 is inside both the 5' and 10' windows.
  EXPECT_EQ(h.sink_.ResultAt("snap", T(5))->table.size(), 1u);
  EXPECT_EQ(h.sink_.ResultAt("snap", T(10))->table.size(), 1u);
  EXPECT_EQ(h.sink_.ResultAt("enter", T(5))->table.size(), 1u);
  EXPECT_TRUE(h.sink_.ResultAt("enter", T(10))->table.empty());
}

TEST(ReportPolicyTest, OnExitingEmitsWhenResultLeaves) {
  PolicyHarness h;
  ASSERT_TRUE(h.engine_.Ingest(Item(1), T(3)).ok());
  ASSERT_TRUE(h.engine_.AdvanceTo(T(20)).ok());
  // @3 expires from the (t−10, t] window after t = 13 → first evaluation
  // without it is 15.
  EXPECT_TRUE(h.sink_.ResultAt("exit", T(5))->table.empty());
  EXPECT_TRUE(h.sink_.ResultAt("exit", T(10))->table.empty());
  EXPECT_EQ(h.sink_.ResultAt("exit", T(15))->table.size(), 1u);
  EXPECT_TRUE(h.sink_.ResultAt("exit", T(20))->table.empty());
}

TEST(ReportPolicyTest, FirstEvaluationOnEnteringEmitsEverything) {
  PolicyHarness h;
  ASSERT_TRUE(h.engine_.Ingest(Item(1), T(1)).ok());
  ASSERT_TRUE(h.engine_.Ingest(Item(2), T(2)).ok());
  ASSERT_TRUE(h.engine_.AdvanceTo(T(5)).ok());
  EXPECT_EQ(h.sink_.ResultAt("enter", T(5))->table.size(), 2u);
  EXPECT_TRUE(h.sink_.ResultAt("exit", T(5))->table.empty());
}

// Algebraic invariants over a randomized stream:
//  * enter@t = snap@t ∖ snap@t−β, exit@t = snap@t−β ∖ snap@t;
//  * snap@t−β + enter@t − exit@t = snap@t (as bags).
class PolicyInvariantTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyInvariantTest, DeltasConsistentWithSnapshots) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> id_dist(1, 15);
  std::uniform_int_distribution<int> gap(1, 4);

  PolicyHarness h;
  int64_t now = 0;
  for (int i = 0; i < 30; ++i) {
    now += gap(rng);
    ASSERT_TRUE(h.engine_.Ingest(Item(id_dist(rng)), T(now)).ok());
  }
  ASSERT_TRUE(h.engine_.AdvanceTo(T(now + 15)).ok());

  const auto& snaps = h.sink_.ResultsFor("snap").entries();
  const auto& enters = h.sink_.ResultsFor("enter").entries();
  const auto& exits = h.sink_.ResultsFor("exit").entries();
  ASSERT_EQ(snaps.size(), enters.size());
  ASSERT_EQ(snaps.size(), exits.size());
  for (size_t i = 1; i < snaps.size(); ++i) {
    const Table& prev = snaps[i - 1].table;
    const Table& cur = snaps[i].table;
    EXPECT_EQ(enters[i].table, Table::BagDifference(cur, prev)) << i;
    EXPECT_EQ(exits[i].table, Table::BagDifference(prev, cur)) << i;
    // prev − exit + enter == cur.
    Table reconstructed = Table::BagUnion(
        Table::BagDifference(prev, exits[i].table), enters[i].table);
    EXPECT_EQ(reconstructed, cur) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyInvariantTest, ::testing::Range(0, 15));

}  // namespace
}  // namespace seraph
