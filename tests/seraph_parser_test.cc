// Seraph grammar tests (Fig. 6): REGISTER QUERY / STARTING AT / WITHIN /
// EMIT / report policies / EVERY.
#include <gtest/gtest.h>

#include "seraph/seraph_parser.h"
#include "workloads/bike_sharing.h"
#include "workloads/network.h"
#include "workloads/pole.h"

namespace seraph {
namespace {

RegisteredQuery MustParse(std::string_view text) {
  auto q = ParseSeraphQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? std::move(q).value() : RegisteredQuery{};
}

TEST(SeraphParserTest, Listing5Parses) {
  RegisteredQuery q = MustParse(workloads::RunningExampleSeraphQuery());
  EXPECT_EQ(q.name, "student_trick");
  EXPECT_EQ(q.starting_at, Timestamp::Parse("2022-10-14T14:45").value());
  EXPECT_EQ(q.mode, OutputMode::kEmitStream);
  EXPECT_EQ(q.policy, ReportPolicy::kOnEntering);
  EXPECT_EQ(q.every.millis(), Duration::FromMinutes(5).millis());
  EXPECT_EQ(q.MaxWidth().millis(), Duration::FromHours(1).millis());
  ASSERT_EQ(q.projection.items.size(), 4u);
  EXPECT_EQ(q.projection.items[3].alias, "hops");
}

TEST(SeraphParserTest, QuotedDatetimeAndDurations) {
  RegisteredQuery q = MustParse(R"(
    REGISTER QUERY qq STARTING AT '2024-01-01T00:00'
    {
      MATCH (n:X) WITHIN 'PT90S'
      EMIT n.id EVERY 'PT30S'
    }
  )");
  EXPECT_EQ(q.starting_at, Timestamp::Parse("2024-01-01T00:00").value());
  EXPECT_EQ(q.every.millis(), 90'000 / 3);
  EXPECT_EQ(q.MaxWidth().millis(), 90'000);
  EXPECT_EQ(q.policy, ReportPolicy::kSnapshot);  // Default.
}

TEST(SeraphParserTest, SnapshotPolicyPrefixAndPostfix) {
  RegisteredQuery prefix = MustParse(R"(
    REGISTER QUERY a STARTING AT 2024-01-01T00:00
    { MATCH (n) WITHIN PT1M EMIT SNAPSHOT n EVERY PT1M })");
  EXPECT_EQ(prefix.policy, ReportPolicy::kSnapshot);
  RegisteredQuery postfix = MustParse(R"(
    REGISTER QUERY b STARTING AT 2024-01-01T00:00
    { MATCH (n) WITHIN PT1M EMIT n SNAPSHOT EVERY PT1M })");
  EXPECT_EQ(postfix.policy, ReportPolicy::kSnapshot);
}

TEST(SeraphParserTest, OnExitingPolicy) {
  RegisteredQuery q = MustParse(R"(
    REGISTER QUERY c STARTING AT 2024-01-01T00:00
    { MATCH (n) WITHIN PT1M EMIT n ON EXITING EVERY PT1M })");
  EXPECT_EQ(q.policy, ReportPolicy::kOnExiting);
}

TEST(SeraphParserTest, ReturnOnceMode) {
  RegisteredQuery q = MustParse(R"(
    REGISTER QUERY once STARTING AT 2024-01-01T00:00
    { MATCH (n:X) WITHIN PT5M RETURN n.id })");
  EXPECT_EQ(q.mode, OutputMode::kReturnOnce);
}

TEST(SeraphParserTest, PerMatchWindows) {
  RegisteredQuery q = MustParse(R"(
    REGISTER QUERY multi STARTING AT 2024-01-01T00:00
    {
      MATCH (a:X) WITHIN PT5M
      MATCH (b:Y {k: a.k}) WITHIN PT1H
      EMIT a.k EVERY PT1M
    })");
  EXPECT_EQ(q.MaxWidth().millis(), Duration::FromHours(1).millis());
  int withins = 0;
  for (const Clause& c : q.clauses) {
    if (const auto* m = std::get_if<MatchClause>(&c)) {
      EXPECT_TRUE(m->within.has_value());
      ++withins;
    }
  }
  EXPECT_EQ(withins, 2);
}

TEST(SeraphParserTest, UseCaseQueriesParse) {
  Timestamp t0 = Timestamp::FromMillis(0);
  EXPECT_TRUE(
      ParseSeraphQuery(workloads::NetworkMonitoringSeraphQuery(t0)).ok());
  EXPECT_TRUE(
      ParseSeraphQuery(workloads::CrimeInvestigationSeraphQuery(t0)).ok());
}

TEST(SeraphParserTest, RejectsMatchWithoutWithin) {
  auto q = ParseSeraphQuery(R"(
    REGISTER QUERY bad STARTING AT 2024-01-01T00:00
    { MATCH (n:X) EMIT n.id EVERY PT1M })");
  EXPECT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), StatusCode::kSemanticError);
}

TEST(SeraphParserTest, RejectsEmitWithoutEvery) {
  EXPECT_FALSE(ParseSeraphQuery(R"(
    REGISTER QUERY bad STARTING AT 2024-01-01T00:00
    { MATCH (n) WITHIN PT1M EMIT n })")
                   .ok());
}

TEST(SeraphParserTest, RejectsConflictingPolicies) {
  EXPECT_FALSE(ParseSeraphQuery(R"(
    REGISTER QUERY bad STARTING AT 2024-01-01T00:00
    { MATCH (n) WITHIN PT1M EMIT SNAPSHOT n ON ENTERING EVERY PT1M })")
                   .ok());
}

TEST(SeraphParserTest, RejectsMissingPieces) {
  EXPECT_FALSE(ParseSeraphQuery("").ok());
  EXPECT_FALSE(ParseSeraphQuery("REGISTER QUERY x { }").ok());
  EXPECT_FALSE(ParseSeraphQuery(
                   "REGISTER QUERY x STARTING AT 2024-01-01 { MATCH (n) "
                   "WITHIN PT1M EMIT n EVERY PT1M")
                   .ok());  // Missing '}'.
  EXPECT_FALSE(
      ParseSeraphQuery("REGISTER QUERY x STARTING AT nope { }").ok());
}

TEST(SeraphParserTest, DescribeSummarizesExecution) {
  RegisteredQuery q = MustParse(workloads::RunningExampleSeraphQuery());
  std::string description = q.Describe();
  EXPECT_NE(description.find("query student_trick"), std::string::npos);
  EXPECT_NE(description.find("EMIT every PT5M (ON ENTERING)"),
            std::string::npos);
  EXPECT_NE(description.find("window PT1H"), std::string::npos);
  EXPECT_NE(description.find("result reuse eligible"), std::string::npos);
  RegisteredQuery once = MustParse(R"(
    REGISTER QUERY o STARTING AT 2024-01-01T00:00
    { MATCH (n) WITHIN PT1M FROM sensors RETURN n.id, datetime() AS at })");
  std::string d2 = once.Describe();
  EXPECT_NE(d2.find("RETURN once"), std::string::npos);
  EXPECT_NE(d2.find("stream 'sensors'"), std::string::npos);
  EXPECT_NE(d2.find("evaluation-time dependent"), std::string::npos);
}

TEST(SeraphParserTest, UnquotedDatetimeWithSeconds) {
  RegisteredQuery q = MustParse(R"(
    REGISTER QUERY s STARTING AT 2024-06-30T23:59:30
    { MATCH (n) WITHIN PT1M EMIT n EVERY PT1M })");
  EXPECT_EQ(q.starting_at,
            Timestamp::Parse("2024-06-30T23:59:30").value());
}

}  // namespace
}  // namespace seraph
