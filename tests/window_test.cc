// Window operator (Def. 5.9), evaluation time instants (Def. 5.10), and
// active-window selection (Def. 5.11) under both semantics of DESIGN.md §2.
#include <gtest/gtest.h>

#include "stream/window.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

TEST(WindowConfigTest, ValidateRejectsNonPositive) {
  WindowConfig c{T(0), Duration::FromMinutes(0), Duration::FromMinutes(5)};
  EXPECT_FALSE(c.Validate().ok());
  WindowConfig c2{T(0), Duration::FromMinutes(5), Duration::FromMinutes(0)};
  EXPECT_FALSE(c2.Validate().ok());
  WindowConfig ok{T(0), Duration::FromMinutes(5), Duration::FromMinutes(5)};
  EXPECT_TRUE(ok.Validate().ok());
}

TEST(WindowConfigTest, LookbackActiveWindowEndsAtEvaluationInstant) {
  // The running example: STARTING AT 14:45, WITHIN PT1H, EVERY PT5M.
  Timestamp start = Timestamp::Parse("2022-10-14T14:45").value();
  WindowConfig c{start, Duration::FromHours(1), Duration::FromMinutes(5),
                 WindowSemantics::kLookback};
  Timestamp eval = Timestamp::Parse("2022-10-14T15:15").value();
  auto w = c.ActiveWindow(eval);
  ASSERT_TRUE(w.has_value());
  // Table 5's annotation: [14:15, 15:15].
  EXPECT_EQ(w->start, Timestamp::Parse("2022-10-14T14:15").value());
  EXPECT_EQ(w->end, eval);
}

TEST(WindowConfigTest, LookbackBoundsIncludeElementAtEvaluationInstant) {
  WindowConfig c{T(0), Duration::FromMinutes(60), Duration::FromMinutes(5),
                 WindowSemantics::kLookback};
  EXPECT_EQ(c.bounds(), IntervalBounds::kLeftOpenRightClosed);
  auto w = c.ActiveWindow(T(60));
  ASSERT_TRUE(w.has_value());
  // The element arriving exactly at the evaluation instant is included;
  // the element exactly at t − α is not (§5.4 narrative).
  EXPECT_TRUE(w->Contains(T(60), c.bounds()));
  EXPECT_FALSE(w->Contains(T(0), c.bounds()));
}

TEST(WindowConfigTest, PaperFormalWindowsGrowForward) {
  WindowConfig c{T(0), Duration::FromMinutes(60), Duration::FromMinutes(5),
                 WindowSemantics::kPaperFormal};
  TimeInterval w0 = c.WindowAt(0);
  EXPECT_EQ(w0.start, T(0));
  EXPECT_EQ(w0.end, T(60));
  TimeInterval w2 = c.WindowAt(2);
  EXPECT_EQ(w2.start, T(10));
  EXPECT_EQ(w2.end, T(70));
}

TEST(WindowConfigTest, PaperFormalActivePicksEarliestOpening) {
  // α = 60, β = 5: many windows contain t = 62; the earliest-opening one
  // is w_1 = [5, 65) (w_0 = [0, 60) no longer contains 62).
  WindowConfig c{T(0), Duration::FromMinutes(60), Duration::FromMinutes(5),
                 WindowSemantics::kPaperFormal};
  auto w = c.ActiveWindow(T(62));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, T(5));
  EXPECT_EQ(w->end, T(65));
}

TEST(WindowConfigTest, PaperFormalActiveAtExactInstants) {
  WindowConfig c{T(0), Duration::FromMinutes(60), Duration::FromMinutes(5),
                 WindowSemantics::kPaperFormal};
  // At t = 0 only w_0 = [0, 60) contains it.
  auto w = c.ActiveWindow(T(0));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->start, T(0));
  // At t = 60, w_0 is closed-out (right-open); earliest containing is
  // w_1 = [5, 65).
  auto w60 = c.ActiveWindow(T(60));
  ASSERT_TRUE(w60.has_value());
  EXPECT_EQ(w60->start, T(5));
}

TEST(WindowConfigTest, PaperFormalGapsWhenSlideExceedsWidth) {
  // β > α leaves uncovered instants between windows.
  WindowConfig c{T(0), Duration::FromMinutes(10), Duration::FromMinutes(20),
                 WindowSemantics::kPaperFormal};
  auto in_w0 = c.ActiveWindow(T(5));
  ASSERT_TRUE(in_w0.has_value());
  EXPECT_EQ(in_w0->start, T(0));
  EXPECT_FALSE(c.ActiveWindow(T(15)).has_value());  // In the gap.
  auto in_w1 = c.ActiveWindow(T(20));
  ASSERT_TRUE(in_w1.has_value());
  EXPECT_EQ(in_w1->start, T(20));
}

TEST(WindowConfigTest, ActiveWindowBeforeStart) {
  WindowConfig c{T(100), Duration::FromMinutes(60), Duration::FromMinutes(5),
                 WindowSemantics::kPaperFormal};
  EXPECT_FALSE(c.ActiveWindow(T(50)).has_value());
}

TEST(WindowConfigTest, TumblingWindowsPartitionTime) {
  // β = α: consecutive paper-formal windows tile the axis.
  WindowConfig c{T(0), Duration::FromMinutes(10), Duration::FromMinutes(10),
                 WindowSemantics::kPaperFormal};
  for (int64_t m : {0, 3, 9, 10, 19, 20, 25}) {
    auto w = c.ActiveWindow(T(m));
    ASSERT_TRUE(w.has_value()) << m;
    EXPECT_EQ(w->start, T((m / 10) * 10)) << m;
  }
}

// Determinism (Def. 5.9 discussion): the window set depends only on the
// configuration, never on data timestamps.
class WindowSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(WindowSweepTest, WindowsHaveConfiguredShape) {
  auto [width_min, slide_min, index] = GetParam();
  WindowConfig c{T(17), Duration::FromMinutes(width_min),
                 Duration::FromMinutes(slide_min),
                 WindowSemantics::kPaperFormal};
  TimeInterval w = c.WindowAt(index);
  EXPECT_EQ(w.width().millis(), Duration::FromMinutes(width_min).millis());
  TimeInterval next = c.WindowAt(index + 1);
  EXPECT_EQ(next.start.millis() - w.start.millis(),
            Duration::FromMinutes(slide_min).millis());
  // Lookback windows have the same shape, anchored to the instant grid.
  WindowConfig lb = c;
  lb.semantics = WindowSemantics::kLookback;
  TimeInterval lw = lb.WindowAt(index);
  EXPECT_EQ(lw.width().millis(), Duration::FromMinutes(width_min).millis());
  EXPECT_EQ(lw.end, T(17) + Duration::FromMinutes(slide_min) * index);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, WindowSweepTest,
    ::testing::Combine(::testing::Values(5, 10, 60),
                       ::testing::Values(1, 5, 10),
                       ::testing::Values(0, 1, 7)));

TEST(EvaluationTimesTest, GridFromStartAndSlide) {
  EvaluationTimes et(T(45), Duration::FromMinutes(5));
  EXPECT_EQ(et.at(0), T(45));
  EXPECT_EQ(et.at(3), T(60));
  std::vector<Timestamp> due = et.UpTo(T(58));
  ASSERT_EQ(due.size(), 3u);  // 45, 50, 55.
  EXPECT_EQ(due.back(), T(55));
}

TEST(EvaluationTimesTest, NextAfter) {
  EvaluationTimes et(T(45), Duration::FromMinutes(5));
  EXPECT_EQ(et.NextAfter(T(10)), T(45));
  EXPECT_EQ(et.NextAfter(T(45)), T(50));
  EXPECT_EQ(et.NextAfter(T(52)), T(55));
  EXPECT_EQ(et.NextAfter(T(55)), T(60));
}

}  // namespace
}  // namespace seraph
