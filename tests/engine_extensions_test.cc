// Tests for the §6/§8 roadmap features the engine implements beyond the
// paper's core: result reuse on unchanged windows, multiple named streams
// (WITHIN ... FROM), static background graphs, per-query statistics, and
// MATCH join-order optimization.
#include <gtest/gtest.h>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/seraph_parser.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id, const char* label = "X") {
  return GraphBuilder()
      .Node(id, {label}, {{"id", Value::Int(id)}})
      .Build();
}

// ---------------------------------------------------------------------------
// Result reuse on unchanged windows (§6 "avoidable re-executions")
// ---------------------------------------------------------------------------

TEST(ResultReuseTest, SparseStreamReusesResults) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT1H EMIT n.id SNAPSHOT EVERY PT5M })")
                  .ok());
  // One element, then silence: windows at 10, 15, ..., 60 all cover the
  // same single element.
  ASSERT_TRUE(engine.Ingest(Item(1), T(7)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(60)).ok());
  QueryStats stats = *engine.StatsFor("q");
  EXPECT_EQ(stats.evaluations, 12);
  // First eval (empty window) computes; 10 computes; 15..60 (11 evals)
  // reuse.
  EXPECT_GE(stats.reused_results, 10);
  // Results are still correct at every instant.
  for (int64_t m = 10; m <= 60; m += 5) {
    EXPECT_EQ(sink.ResultAt("q", T(m))->table.size(), 1u) << m;
  }
}

TEST(ResultReuseTest, DisabledByOption) {
  EngineOptions options;
  options.reuse_unchanged_windows = false;
  ContinuousEngine engine(options);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT1H EMIT n.id SNAPSHOT EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(7)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(60)).ok());
  EXPECT_EQ(engine.StatsFor("q")->reused_results, 0);
}

TEST(ResultReuseTest, VolatileQueriesNeverReuse) {
  // datetime() in the projection makes every evaluation distinct.
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY vol STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT1H EMIT n.id, datetime() AS at
      SNAPSHOT EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(7)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  EXPECT_EQ(engine.StatsFor("vol")->reused_results, 0);
  // And the emitted timestamps do differ per evaluation.
  EXPECT_EQ(sink.ResultAt("vol", T(10))->table.rows()[0].GetOrNull("at"),
            Value::DateTime(T(10)));
  EXPECT_EQ(sink.ResultAt("vol", T(15))->table.rows()[0].GetOrNull("at"),
            Value::DateTime(T(15)));
}

TEST(ResultReuseTest, DeterminismAnalysis) {
  auto det = ParseSeraphQuery(R"(
    REGISTER QUERY a STARTING AT '1970-01-01T00:00'
    { MATCH (n:X) WITHIN PT1M WHERE n.id > 3 EMIT n.id EVERY PT1M })");
  ASSERT_TRUE(det.ok());
  EXPECT_TRUE(det->IsWindowContentDeterministic());
  auto vol_where = ParseSeraphQuery(R"(
    REGISTER QUERY b STARTING AT '1970-01-01T00:00'
    { MATCH (n:X) WITHIN PT1M WHERE n.t < datetime() EMIT n.id EVERY PT1M })");
  ASSERT_TRUE(vol_where.ok());
  EXPECT_FALSE(vol_where->IsWindowContentDeterministic());
  auto vol_win = ParseSeraphQuery(R"(
    REGISTER QUERY c STARTING AT '1970-01-01T00:00'
    { MATCH (n:X) WITHIN PT1M EMIT n.id, win_start EVERY PT1M })");
  ASSERT_TRUE(vol_win.ok());
  EXPECT_FALSE(vol_win->IsWindowContentDeterministic());
  // datetime with a literal argument is not volatile.
  auto det_lit = ParseSeraphQuery(R"(
    REGISTER QUERY d STARTING AT '1970-01-01T00:00'
    { MATCH (n:X) WITHIN PT1M
      WHERE n.t > datetime('2020-01-01T00:00') EMIT n.id EVERY PT1M })");
  ASSERT_TRUE(det_lit.ok());
  EXPECT_TRUE(det_lit->IsWindowContentDeterministic());
}

// ---------------------------------------------------------------------------
// Multiple named streams (§8 (i))
// ---------------------------------------------------------------------------

TEST(MultiStreamTest, MatchFromSelectsStream) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY join STARTING AT '1970-01-01T00:05'
    {
      MATCH (a:X) WITHIN PT30M FROM sensors
      MATCH (b:X {id: a.id}) WITHIN PT30M FROM alarms
      EMIT a.id EVERY PT5M
    })")
                  .ok());
  // id 1 only in sensors; id 2 in both; id 3 only in alarms.
  ASSERT_TRUE(engine.IngestTo("sensors", Item(1), T(1)).ok());
  ASSERT_TRUE(engine.IngestTo("sensors", Item(2), T(2)).ok());
  ASSERT_TRUE(engine.IngestTo("alarms", Item(2), T(3)).ok());
  ASSERT_TRUE(engine.IngestTo("alarms", Item(3), T(4)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  auto result = sink.ResultAt("join", T(5));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->table.size(), 1u);
  EXPECT_EQ(result->table.rows()[0].GetOrNull("a.id"), Value::Int(2));
}

TEST(MultiStreamTest, DefaultStreamIsSeparate) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id EVERY PT5M })")
                  .ok());
  // Elements on a named stream are invisible to the default stream.
  ASSERT_TRUE(engine.IngestTo("other", Item(9), T(1)).ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(2)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  ASSERT_EQ(sink.ResultAt("q", T(5))->table.size(), 1u);
  EXPECT_EQ(sink.ResultAt("q", T(5))->table.rows()[0].GetOrNull("n.id"),
            Value::Int(1));
}

TEST(MultiStreamTest, FromParsesAndPrintsInMatch) {
  auto q = ParseSeraphQuery(R"(
    REGISTER QUERY s STARTING AT '1970-01-01T00:00'
    { MATCH (n:X) WITHIN PT5M FROM telemetry EMIT n.id EVERY PT5M })");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& match = std::get<MatchClause>(q->clauses[0]);
  EXPECT_EQ(match.from_stream, "telemetry");
}

// ---------------------------------------------------------------------------
// Static background graph (§8 (iii))
// ---------------------------------------------------------------------------

TEST(StaticGraphTest, StaticEntitiesJoinWithStreamed) {
  for (bool incremental : {true, false}) {
    EngineOptions options;
    options.incremental_snapshots = incremental;
    ContinuousEngine engine(options);
    CollectingSink sink;
    engine.AddSink(&sink);
    // Static: stations with a region property.
    PropertyGraph static_graph =
        GraphBuilder()
            .Node(100, {"Station"},
                  {{"id", Value::Int(100)},
                   {"region", Value::String("north")}})
            .Build();
    ASSERT_TRUE(engine.SetStaticGraph(std::move(static_graph)).ok());
    ASSERT_TRUE(engine.RegisterText(R"(
      REGISTER QUERY q STARTING AT '1970-01-01T00:05'
      {
        MATCH (b:Bike)-[r:at]->(s:Station)
        WITHIN PT30M
        EMIT b.id, s.region EVERY PT5M
      })")
                    .ok());
    // The streamed event references the static station.
    PropertyGraph event = GraphBuilder()
                              .Node(1, {"Bike"}, {{"id", Value::Int(1)}})
                              .Node(100, {"Station"})
                              .Rel(1, 1, 100, "at")
                              .Build();
    ASSERT_TRUE(engine.Ingest(std::move(event), T(2)).ok());
    ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
    auto result = sink.ResultAt("q", T(5));
    ASSERT_TRUE(result.has_value());
    ASSERT_EQ(result->table.size(), 1u) << "incremental=" << incremental;
    EXPECT_EQ(result->table.rows()[0].GetOrNull("s.region"),
              Value::String("north"));
  }
}

TEST(StaticGraphTest, StaticNeverExpires) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .SetStaticGraph(GraphBuilder()
                                      .Node(7, {"X"},
                                            {{"id", Value::Int(7)}})
                                      .Build())
                  .ok());
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT10M EMIT n.id SNAPSHOT EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(2)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  // At 5: both; at 30 (streamed element long expired): static only.
  EXPECT_EQ(sink.ResultAt("q", T(5))->table.size(), 2u);
  ASSERT_EQ(sink.ResultAt("q", T(30))->table.size(), 1u);
  EXPECT_EQ(sink.ResultAt("q", T(30))->table.rows()[0].GetOrNull("n.id"),
            Value::Int(7));
}

TEST(StaticGraphTest, MustBeSetBeforeRegistering) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT10M EMIT n.id EVERY PT5M })")
                  .ok());
  EXPECT_EQ(engine.SetStaticGraph(PropertyGraph()).code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------------

TEST(QueryStatsTest, CountsEvaluationsAndRows) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id ON ENTERING EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(1)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2), T(12)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(15)).ok());
  QueryStats stats = *engine.StatsFor("q");
  EXPECT_EQ(stats.evaluations, 3);       // 5, 10, 15.
  EXPECT_EQ(stats.rows_emitted, 2);      // Each element enters once.
  EXPECT_EQ(stats.result_rows, 1 + 1 + 2);
  EXPECT_EQ(engine.StatsFor("nope").status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// MATCH join-order optimization
// ---------------------------------------------------------------------------

TEST(MatchOrderTest, ResultsIdenticalWithAndWithoutOptimizer) {
  // A deliberately badly-ordered query: the selective pattern is last.
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"Hub"}, {{"id", Value::Int(1)}})
                        .Node(2, {"Leaf"}, {{"id", Value::Int(2)}})
                        .Node(3, {"Leaf"}, {{"id", Value::Int(3)}})
                        .Node(4, {"Leaf"}, {{"id", Value::Int(4)}})
                        .Rel(1, 1, 2, "E")
                        .Rel(2, 1, 3, "E")
                        .Rel(3, 1, 4, "E")
                        .Build();
  auto q = ParseCypherQuery(
      "MATCH (l:Leaf), (h:Hub)-[:E]->(l) RETURN l.id ORDER BY l.id");
  ASSERT_TRUE(q.ok());
  ExecutionOptions with_opt;
  with_opt.optimize_match_order = true;
  ExecutionOptions without_opt;
  without_opt.optimize_match_order = false;
  auto a = ExecuteQueryOnGraph(*q, g, with_opt);
  auto b = ExecuteQueryOnGraph(*q, g, without_opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->size(), 3u);
}

}  // namespace
}  // namespace seraph
