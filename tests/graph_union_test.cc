// Union algebra tests (Def. 5.4) including the Figure-2 golden check and
// property-style sweeps for idempotence / commutativity / associativity of
// the strict union on consistent operands.
#include <gtest/gtest.h>

#include <random>

#include "graph/graph_builder.h"
#include "graph/graph_union.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

PropertyGraph G1() {
  return GraphBuilder()
      .Node(1, {"A"}, {{"x", Value::Int(1)}})
      .Node(2, {"B"})
      .Rel(1, 1, 2, "R")
      .Build();
}

PropertyGraph G2() {
  return GraphBuilder()
      .Node(2, {"B"})
      .Node(3, {"C"})
      .Rel(2, 2, 3, "R")
      .Build();
}

TEST(GraphUnionTest, StrictUnionDisjointAndOverlapping) {
  auto u = StrictUnion(G1(), G2());
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_EQ(u->num_nodes(), 3u);
  EXPECT_EQ(u->num_relationships(), 2u);
}

TEST(GraphUnionTest, StrictUnionDetectsPropertyConflict) {
  PropertyGraph a = GraphBuilder().Node(1, {"A"}, {{"x", Value::Int(1)}})
                        .Build();
  PropertyGraph b = GraphBuilder().Node(1, {"A"}, {{"x", Value::Int(2)}})
                        .Build();
  EXPECT_EQ(StrictUnion(a, b).status().code(), StatusCode::kInconsistent);
  EXPECT_FALSE(AreConsistent(a, b));
}

TEST(GraphUnionTest, StrictUnionDetectsLabelConflict) {
  PropertyGraph a = GraphBuilder().Node(1, {"A"}).Build();
  PropertyGraph b = GraphBuilder().Node(1, {"B"}).Build();
  EXPECT_EQ(StrictUnion(a, b).status().code(), StatusCode::kInconsistent);
}

TEST(GraphUnionTest, StrictUnionDetectsEndpointConflict) {
  PropertyGraph a = GraphBuilder().Node(1, {"A"}).Node(2, {"A"})
                        .Rel(1, 1, 2, "R").Build();
  PropertyGraph b = GraphBuilder().Node(1, {"A"}).Node(2, {"A"})
                        .Rel(1, 2, 1, "R").Build();
  EXPECT_EQ(StrictUnion(a, b).status().code(), StatusCode::kInconsistent);
}

TEST(GraphUnionTest, MergeUnionResolvesPropertyConflictNewerWins) {
  PropertyGraph a = GraphBuilder().Node(1, {"A"}, {{"x", Value::Int(1)}})
                        .Build();
  PropertyGraph b = GraphBuilder().Node(1, {"A"}, {{"x", Value::Int(2)}})
                        .Build();
  auto u = MergeUnion(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(u->node(NodeId{1})->properties.at("x"), Value::Int(2));
}

TEST(GraphUnionTest, UnionWithEmptyIsIdentity) {
  PropertyGraph empty;
  auto u1 = StrictUnion(G1(), empty);
  auto u2 = StrictUnion(empty, G1());
  ASSERT_TRUE(u1.ok());
  ASSERT_TRUE(u2.ok());
  EXPECT_EQ(*u1, G1());
  EXPECT_EQ(*u2, G1());
}

TEST(GraphUnionTest, StrictUnionIdempotent) {
  auto u = StrictUnion(G1(), G1());
  ASSERT_TRUE(u.ok());
  EXPECT_EQ(*u, G1());
}

TEST(GraphUnionTest, StrictUnionCommutative) {
  auto ab = StrictUnion(G1(), G2());
  auto ba = StrictUnion(G2(), G1());
  ASSERT_TRUE(ab.ok());
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(*ab, *ba);
}

// Property-style sweep: random consistent graph fragments obey
// associativity and commutativity under strict union.
class GraphUnionPropertyTest : public ::testing::TestWithParam<int> {};

PropertyGraph RandomFragment(std::mt19937_64* rng) {
  // Fragments draw from a shared universe of node payloads so overlaps are
  // always consistent.
  std::uniform_int_distribution<int> node_count(1, 8);
  std::uniform_int_distribution<int> id_dist(1, 12);
  PropertyGraph g;
  int n = node_count(*rng);
  for (int i = 0; i < n; ++i) {
    int64_t id = id_dist(*rng);
    NodeData data;
    data.labels = {id % 2 == 0 ? "Even" : "Odd"};
    data.properties = {{"id", Value::Int(id)}};
    g.MergeNode(NodeId{id}, data);
  }
  // Deterministic relationship between consecutive present nodes: rel id
  // derived from endpoints so overlapping fragments agree.
  std::vector<NodeId> ids = g.NodeIds();
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    RelData rel;
    rel.type = "NEXT";
    rel.src = ids[i];
    rel.trg = ids[i + 1];
    int64_t rid = ids[i].value * 100 + ids[i + 1].value;
    Status s = g.MergeRelationship(RelId{rid}, rel);
    EXPECT_TRUE(s.ok());
  }
  return g;
}

TEST_P(GraphUnionPropertyTest, AssociativeAndCommutative) {
  std::mt19937_64 rng(GetParam());
  PropertyGraph a = RandomFragment(&rng);
  PropertyGraph b = RandomFragment(&rng);
  PropertyGraph c = RandomFragment(&rng);
  auto ab = StrictUnion(a, b);
  ASSERT_TRUE(ab.ok()) << ab.status();
  auto bc = StrictUnion(b, c);
  ASSERT_TRUE(bc.ok()) << bc.status();
  auto ab_c = StrictUnion(*ab, c);
  auto a_bc = StrictUnion(a, *bc);
  ASSERT_TRUE(ab_c.ok());
  ASSERT_TRUE(a_bc.ok());
  EXPECT_EQ(*ab_c, *a_bc);
  auto ba = StrictUnion(b, a);
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(*ab, *ba);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphUnionPropertyTest,
                         ::testing::Range(0, 25));

// Figure 2: merging the five Figure-1 events yields 8 nodes (4 stations,
// 4 bikes) and 8 relationships (4 rentals, 4 returns).
TEST(GraphUnionTest, Figure2MergedGraph) {
  PropertyGraph merged = workloads::BuildRunningExampleMergedGraph();
  EXPECT_EQ(merged.num_nodes(), 8u);
  EXPECT_EQ(merged.num_relationships(), 8u);
  EXPECT_EQ(merged.NodesWithLabel("Station").size(), 4u);
  EXPECT_EQ(merged.NodesWithLabel("Bike").size(), 4u);
  EXPECT_EQ(merged.NodesWithLabel("E-Bike").size(), 2u);
  EXPECT_EQ(merged.RelationshipsWithType("rentedAt").size(), 4u);
  EXPECT_EQ(merged.RelationshipsWithType("returnedAt").size(), 4u);
  // The five events are pairwise consistent, so strict union agrees with
  // ingestion merge.
  PropertyGraph strict;
  for (const auto& event : workloads::BuildRunningExampleStream()) {
    auto u = StrictUnion(strict, event.graph);
    ASSERT_TRUE(u.ok()) << u.status();
    strict = std::move(u).value();
  }
  EXPECT_EQ(strict, merged);
}

}  // namespace
}  // namespace seraph
