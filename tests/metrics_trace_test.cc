// The observability layer: metrics primitives and registry exposition,
// the trace recorder's chrome://tracing JSON, the engine's per-stage
// instrumentation, and the configurable logging sink.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "seraph/continuous_engine.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, FirstSampleSetsMinAndMax) {
  Histogram h;
  h.Record(5);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.min, 5);
  EXPECT_EQ(snap.max, 5);
  EXPECT_EQ(snap.sum, 5);
  EXPECT_DOUBLE_EQ(snap.mean, 5.0);
  // A single sample's percentiles are clamped to [min, max] = {5}.
  EXPECT_EQ(snap.p50, 5);
  EXPECT_EQ(snap.p99, 5);
}

TEST(HistogramTest, ZeroFirstSample) {
  Histogram h;
  h.Record(0);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.p50, 0);
}

TEST(HistogramTest, NegativeSamplesClampToZero) {
  Histogram h;
  h.Record(-7);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1);
  EXPECT_EQ(snap.min, 0);
  EXPECT_EQ(snap.max, 0);
  EXPECT_EQ(snap.sum, 0);
}

TEST(HistogramTest, PercentileInterpolationWithinBucket) {
  Histogram h;
  // 100 samples spread across the [64, 128) bucket.
  for (int i = 0; i < 100; ++i) h.Record(64 + i % 64);
  HistogramSnapshot snap = h.Snapshot();
  // Interpolation keeps estimates inside the bucket (and inside
  // [min, max]).
  EXPECT_GE(snap.p50, 64);
  EXPECT_LE(snap.p50, 127);
  EXPECT_GE(snap.p90, snap.p50);
  EXPECT_GE(snap.p99, snap.p90);
  EXPECT_LE(snap.p99, snap.max);
}

TEST(HistogramTest, PercentilesOrderedAcrossBuckets) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Record(10);   // [8,16) bucket.
  for (int i = 0; i < 10; ++i) h.Record(1000);  // [512,1024) bucket.
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_GE(snap.p50, 8);
  EXPECT_LE(snap.p50, 16);
  EXPECT_GE(snap.p99, 512);
  EXPECT_LE(snap.p99, 1000);
  EXPECT_EQ(snap.count, 100);
}

TEST(HistogramTest, ResetClearsState) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.Snapshot().max, 0);
}

// ---------------------------------------------------------------------------
// Counter / Gauge / registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricsRegistry registry;
  Counter* a = registry.CounterFor("seraph_test_total", {{"q", "x"}});
  Counter* b = registry.CounterFor("seraph_test_total", {{"q", "x"}});
  Counter* c = registry.CounterFor("seraph_test_total", {{"q", "y"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment(3);
  EXPECT_EQ(registry.FindCounter("seraph_test_total", {{"q", "x"}})->value(),
            3);
  EXPECT_EQ(registry.FindCounter("seraph_test_total", {{"q", "z"}}),
            nullptr);
  EXPECT_EQ(registry.FindCounter("absent_total"), nullptr);
  EXPECT_EQ(registry.series_count(), 2u);
}

TEST(MetricsRegistryTest, GaugeMovesBothWays) {
  MetricsRegistry registry;
  Gauge* g = registry.GaugeFor("seraph_level");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsSeries) {
  MetricsRegistry registry;
  Counter* c = registry.CounterFor("seraph_c_total");
  Histogram* h = registry.HistogramFor("seraph_h_micros");
  c->Increment(5);
  h->Record(100);
  registry.Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(h->count(), 0);
  EXPECT_EQ(registry.series_count(), 2u);
  // Pointers stay valid after Reset.
  c->Increment();
  EXPECT_EQ(registry.FindCounter("seraph_c_total")->value(), 1);
}

TEST(MetricsRegistryTest, PrometheusTextFormat) {
  MetricsRegistry registry;
  registry.CounterFor("seraph_events_total", {{"stream", "s1"}})
      ->Increment(7);
  registry.GaugeFor("seraph_queries_registered")->Set(2);
  Histogram* h =
      registry.HistogramFor("seraph_stage_micros",
                            {{"query", "q"}, {"stage", "match"}});
  h->Record(100);
  h->Record(200);
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE seraph_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("seraph_events_total{stream=\"s1\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE seraph_queries_registered gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("seraph_queries_registered 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE seraph_stage_micros histogram\n"),
            std::string::npos);
  EXPECT_NE(
      text.find(
          "seraph_stage_micros{query=\"q\",stage=\"match\",quantile=\"0.5\"}"),
      std::string::npos);
  // Native cumulative buckets: 100 and 200 both land in [64, 128) and
  // [128, 256) respectively, so le="127" counts 1, le="255" counts 2, and
  // +Inf always equals _count.
  EXPECT_NE(
      text.find(
          "seraph_stage_micros_bucket{query=\"q\",stage=\"match\",le=\"127\"} "
          "1\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "seraph_stage_micros_bucket{query=\"q\",stage=\"match\",le=\"255\"} "
          "2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find(
          "seraph_stage_micros_bucket{query=\"q\",stage=\"match\",le=\"+Inf\"}"
          " 2\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("seraph_stage_micros_sum{query=\"q\",stage=\"match\"} 300\n"),
      std::string::npos);
  EXPECT_NE(
      text.find("seraph_stage_micros_count{query=\"q\",stage=\"match\"} 2\n"),
      std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusLabelEscaping) {
  MetricsRegistry registry;
  registry.CounterFor("seraph_odd_total",
                      {{"name", "a\"b\\c\nd"}})
      ->Increment();
  std::string text = registry.ToPrometheusText();
  EXPECT_NE(text.find("seraph_odd_total{name=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos);
}

// A tiny structural JSON check: balanced braces/brackets outside strings
// and no trailing garbage — enough to catch emitter bugs without a full
// parser.
void ExpectBalancedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << json;
  }
  EXPECT_EQ(depth, 0) << json;
  EXPECT_FALSE(in_string) << json;
}

TEST(MetricsRegistryTest, JsonFormat) {
  MetricsRegistry registry;
  registry.CounterFor("seraph_events_total", {{"stream", "s1"}})
      ->Increment(7);
  Histogram* h = registry.HistogramFor("seraph_lat_micros");
  h->Record(10);
  std::string json = registry.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"seraph_events_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"stream\":\"s1\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceRecorder / TraceSpan
// ---------------------------------------------------------------------------

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;  // Disabled by default.
  {
    TraceSpan span(&recorder, "work", "test");
    EXPECT_FALSE(span.recording());
  }
  {
    TraceSpan span(nullptr, "work", "test");
    EXPECT_FALSE(span.recording());
  }
  recorder.AddComplete("x", "test", 0, 1);
  recorder.AddInstant("y", "test", 0);
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceTest, SpanRecordsCompleteEventWithArgs) {
  TraceRecorder recorder;
  recorder.Enable();
  {
    TraceSpan span(&recorder, "match", "engine");
    EXPECT_TRUE(span.recording());
    span.AddArg("query", "q1");
  }
  ASSERT_EQ(recorder.size(), 1u);
  const TraceRecorder::Event& event = recorder.events()[0];
  EXPECT_EQ(event.name, "match");
  EXPECT_EQ(event.category, "engine");
  EXPECT_EQ(event.phase, 'X');
  EXPECT_GE(event.dur_micros, 0);
  ASSERT_EQ(event.args.size(), 1u);
  EXPECT_EQ(event.args[0].first, "query");
  EXPECT_EQ(event.args[0].second, "q1");
}

TEST(TraceTest, JsonExportIsChromeTraceShaped) {
  TraceRecorder recorder;
  recorder.Enable();
  recorder.AddComplete("stage \"a\"", "engine", 100, 50,
                       {{"k", "v\nw"}});
  recorder.AddInstant("marker", "stream", 175);
  std::string json = recorder.ToJson();
  ExpectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);  // Instant scope.
  EXPECT_NE(json.find("stage \\\"a\\\""), std::string::npos);
  EXPECT_NE(json.find("v\\nw"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

constexpr char kQuery[] = R"(
  REGISTER QUERY q STARTING AT '1970-01-01T00:05'
  {
    MATCH (b:Bike)-[r:rentedAt]->(s:Station)
    WITHIN PT20M
    EMIT r.user_id, s.id ON ENTERING EVERY PT5M
  })";

void Replay(ContinuousEngine* engine, int num_events) {
  workloads::BikeSharingConfig config;
  config.num_events = num_events;
  auto events = workloads::GenerateBikeSharingStream(config);
  ASSERT_TRUE(engine->RegisterText(kQuery).ok());
  for (const auto& event : events) {
    ASSERT_TRUE(engine->Ingest(event.graph, event.timestamp).ok());
  }
  ASSERT_TRUE(engine->Drain().ok());
}

TEST(EngineObservabilityTest, StatsForUnknownQueryIsNotFound) {
  ContinuousEngine engine;
  auto stats = engine.StatsFor("nope");
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kNotFound);
  auto latency = engine.LatencyFor("nope");
  ASSERT_FALSE(latency.ok());
  EXPECT_EQ(latency.status().code(), StatusCode::kNotFound);
}

TEST(EngineObservabilityTest, StageHistogramsCoverEveryEvaluation) {
  ContinuousEngine engine;
  Replay(&engine, 12);
  QueryStats stats = *engine.StatsFor("q");
  ASSERT_GT(stats.evaluations, 0);
  for (const char* stage : {"window", "snapshot", "match", "policy",
                            "sink"}) {
    const Histogram* h = engine.metrics().FindHistogram(
        "seraph_stage_micros", {{"query", "q"}, {"stage", stage}});
    ASSERT_NE(h, nullptr) << stage;
    EXPECT_EQ(h->count(), stats.evaluations) << stage;
  }
  const Histogram* total = engine.metrics().FindHistogram(
      "seraph_query_eval_micros", {{"query", "q"}});
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), stats.evaluations);
  // The registry's evaluation counter agrees with QueryStats, and the
  // reuse split partitions the evaluations.
  EXPECT_EQ(engine.metrics()
                .FindCounter("seraph_query_evaluations_total",
                             {{"query", "q"}})
                ->value(),
            stats.evaluations);
  EXPECT_EQ(stats.reused_results + stats.fresh_executions,
            stats.evaluations);
  // Stage micros in QueryStats match the histogram sums.
  const Histogram* match = engine.metrics().FindHistogram(
      "seraph_stage_micros", {{"query", "q"}, {"stage", "match"}});
  EXPECT_EQ(match->sum(), stats.match_micros);
}

TEST(EngineObservabilityTest, IngestionCountersPerStream) {
  ContinuousEngine engine;
  Replay(&engine, 8);
  const Counter* ingested = engine.metrics().FindCounter(
      "seraph_stream_elements_ingested_total", {{"stream", "<default>"}});
  ASSERT_NE(ingested, nullptr);
  EXPECT_EQ(ingested->value(), 8);
}

TEST(EngineObservabilityTest, SnapshotMaintenanceCounters) {
  ContinuousEngine engine;  // Incremental maintenance on by default.
  Replay(&engine, 12);
  QueryStats stats = *engine.StatsFor("q");
  EXPECT_GT(stats.snapshots_incremental, 0);
  EXPECT_EQ(stats.snapshots_rebuilt, 0);
  // Every stream element entered some window at some point.
  EXPECT_EQ(stats.window_elements_added, 12);
  EXPECT_GT(stats.window_elements_evicted, 0);  // PT20M window, 1h stream.

  EngineOptions rebuild;
  rebuild.incremental_snapshots = false;
  ContinuousEngine engine2(rebuild);
  Replay(&engine2, 12);
  QueryStats stats2 = *engine2.StatsFor("q");
  EXPECT_EQ(stats2.snapshots_incremental, 0);
  EXPECT_GT(stats2.snapshots_rebuilt, 0);
}

TEST(EngineObservabilityTest, TracerCapturesPipelineSpans) {
  TraceRecorder recorder;
  recorder.Enable();
  EngineOptions options;
  options.tracer = &recorder;
  ContinuousEngine engine(options);
  Replay(&engine, 8);
  ASSERT_GT(recorder.size(), 0u);
  bool saw_eval = false, saw_snapshot = false, saw_ingest = false;
  for (const auto& event : recorder.events()) {
    if (event.name == "evaluate") saw_eval = true;
    if (event.name == "snapshot") saw_snapshot = true;
    if (event.name == "ingest") saw_ingest = true;
  }
  EXPECT_TRUE(saw_eval);
  EXPECT_TRUE(saw_snapshot);
  EXPECT_TRUE(saw_ingest);
  // Span nesting: every 'sink' child must lie inside some 'evaluate'
  // parent. The evaluate span runs to the end of sink delivery precisely
  // so the merged trace nests even with a worker-to-coordinator
  // scheduling gap between the policy and sink stages.
  for (const auto& child : recorder.events()) {
    if (child.name != "sink") continue;
    bool contained = false;
    for (const auto& parent : recorder.events()) {
      if (parent.name != "evaluate") continue;
      if (parent.ts_micros <= child.ts_micros &&
          parent.ts_micros + parent.dur_micros >=
              child.ts_micros + child.dur_micros) {
        contained = true;
        break;
      }
    }
    EXPECT_TRUE(contained) << "sink span escapes its evaluate parent";
  }
  ExpectBalancedJson(recorder.ToJson());
}

TEST(EngineObservabilityTest, MetricsSurviveUnregister) {
  ContinuousEngine engine;
  Replay(&engine, 8);
  int64_t evals = engine.StatsFor("q")->evaluations;
  ASSERT_TRUE(engine.Unregister("q").ok());
  EXPECT_FALSE(engine.StatsFor("q").ok());
  // The registry still exposes the completed query's series.
  const Counter* total = engine.metrics().FindCounter(
      "seraph_query_evaluations_total", {{"query", "q"}});
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->value(), evals);
  EXPECT_EQ(
      engine.metrics().FindGauge("seraph_queries_registered")->value(), 0);
}

// ---------------------------------------------------------------------------
// Logging
// ---------------------------------------------------------------------------

struct CapturedLine {
  internal_logging::Severity severity;
  std::string message;
};

class LogCapture {
 public:
  LogCapture() {
    internal_logging::SetLogSink(
        [this](internal_logging::Severity severity, const char*, int,
               const std::string& message) {
          lines_.push_back({severity, message});
        });
  }
  ~LogCapture() {
    internal_logging::SetLogSink(nullptr);
    internal_logging::SetMinLogSeverity(
        internal_logging::Severity::kInfo);
  }
  const std::vector<CapturedLine>& lines() const { return lines_; }

 private:
  std::vector<CapturedLine> lines_;
};

TEST(LoggingTest, SinkCapturesMessages) {
  LogCapture capture;
  SERAPH_LOG(INFO) << "hello " << 42;
  SERAPH_LOG(WARNING) << "uh oh";
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0].message, "hello 42");
  EXPECT_EQ(capture.lines()[0].severity,
            internal_logging::Severity::kInfo);
  EXPECT_EQ(capture.lines()[1].message, "uh oh");
}

TEST(LoggingTest, MinSeverityFiltersLowerLevels) {
  LogCapture capture;
  internal_logging::SetMinLogSeverity(
      internal_logging::Severity::kError);
  SERAPH_LOG(INFO) << "dropped";
  SERAPH_LOG(WARNING) << "dropped too";
  SERAPH_LOG(ERROR) << "kept";
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_EQ(capture.lines()[0].message, "kept");
}

TEST(LoggingTest, DcheckPassesOnTrueCondition) {
  // Under !NDEBUG this evaluates; under NDEBUG it compiles away. Either
  // way a true condition must not abort.
  SERAPH_DCHECK(1 + 1 == 2) << "arithmetic still works";
  SUCCEED();
}

}  // namespace
}  // namespace seraph
