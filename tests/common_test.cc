#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"

namespace seraph {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  Status e = Status::ParseError("bad token");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), StatusCode::kParseError);
  EXPECT_EQ(e.ToString(), "parse_error: bad token");
  EXPECT_EQ(Status::OK().ToString(), "OK");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Status Fails() { return Status::Internal("boom"); }
Status PropagatesThrough() {
  SERAPH_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_EQ(PropagatesThrough().code(), StatusCode::kInternal);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  SERAPH_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, ValueAndError) {
  auto ok = Half(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnChains) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd.
}

TEST(ResultTest, ConvertibleValueTypes) {
  // unique_ptr<Derived> → Result<unique_ptr<Base>>.
  struct Base {
    virtual ~Base() = default;
  };
  struct Derived : Base {};
  auto make = []() -> Result<std::unique_ptr<Base>> {
    return std::make_unique<Derived>();
  };
  EXPECT_TRUE(make().ok());
}

TEST(StringsTest, Split) {
  EXPECT_EQ(StrSplit("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StripAndCase) {
  EXPECT_EQ(StripWhitespace("  x \n"), "x");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_TRUE(EqualsIgnoreCase("MATCH", "match"));
  EXPECT_FALSE(EqualsIgnoreCase("MATCH", "matches"));
  EXPECT_EQ(AsciiUpper("abC"), "ABC");
  EXPECT_TRUE(StartsWith("seraph", "ser"));
  EXPECT_FALSE(StartsWith("se", "ser"));
}

TEST(CancellationTokenTest, ExpiresWhenTheClockPassesTheDeadline) {
  ManualClock clock(0);
  CancellationToken token(&clock, /*deadline_micros=*/1000);
  EXPECT_FALSE(token.Expired());
  EXPECT_TRUE(token.Check().ok());
  clock.Set(1000);  // Deadline is inclusive: now >= deadline expires.
  // The strided clock read re-checks at most kCheckStride calls later.
  bool expired = false;
  for (int i = 0; i <= CancellationToken::kCheckStride && !expired; ++i) {
    expired = token.Expired();
  }
  EXPECT_TRUE(expired);
  // Sticky: every later check fails immediately, whatever the clock says.
  clock.Set(0);
  EXPECT_TRUE(token.Expired());
  Status s = token.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(s.IsTransient());  // Rides the error-budget path, not retry.
}

TEST(CancellationTokenTest, CancelTripsWithoutTheClock) {
  ManualClock clock(0);
  CancellationToken token(&clock, /*deadline_micros=*/1'000'000);
  EXPECT_TRUE(token.Check().ok());
  token.Cancel();
  EXPECT_TRUE(token.Expired());
  EXPECT_EQ(token.Check().code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, DeadlineExceededCodeAndFactory) {
  Status s = Status::DeadlineExceeded("too slow");
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "deadline_exceeded: too slow");
  EXPECT_FALSE(s.IsTransient());
}

}  // namespace
}  // namespace seraph
