// Deterministic fault-injecting test doubles for the transport and sink
// sides of the Fig. 1 loop. They complement the FaultInjector (which
// fails the library's own fault points): the doubles model a *component*
// failing — a broker that drops polls, a consumer that rejects results —
// with exact, countable schedules.
#ifndef SERAPH_TESTS_FAULT_DOUBLES_H_
#define SERAPH_TESTS_FAULT_DOUBLES_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "seraph/continuous_engine.h"
#include "stream/event_queue.h"

namespace seraph {

// An EventQueue whose Poll transiently fails on a fixed cadence
// (every `fail_every`-th call), like a broker timing out.
class FlakyQueue final : public EventQueue {
 public:
  explicit FlakyQueue(int fail_every) : fail_every_(fail_every) {}

  Result<std::vector<StreamElement>> Poll(const std::string& consumer,
                                          size_t max_events) override {
    ++polls_;
    if (fail_every_ > 0 && polls_ % fail_every_ == 0) {
      ++failures_;
      return Status::Unavailable("flaky queue: poll #" +
                                 std::to_string(polls_) + " timed out");
    }
    return EventQueue::Poll(consumer, max_events);
  }

  int64_t polls() const { return polls_; }
  int64_t failures() const { return failures_; }

 private:
  int fail_every_;
  int64_t polls_ = 0;
  int64_t failures_ = 0;
};

// An EventQueue whose log permits out-of-order timestamps, modelling an
// upstream broker that interleaves late events — the case the in-memory
// queue's ordered log cannot represent but the reorder buffer exists for.
class UnorderedQueue final : public EventQueue {
 public:
  void Add(PropertyGraph graph, Timestamp timestamp) {
    elements_.push_back(StreamElement{
        std::make_shared<const PropertyGraph>(std::move(graph)), timestamp});
  }

  Result<std::vector<StreamElement>> Poll(const std::string& consumer,
                                          size_t max_events) override {
    size_t& offset = offsets_[consumer];
    std::vector<StreamElement> out;
    while (offset < elements_.size() && out.size() < max_events) {
      out.push_back(elements_[offset++]);
    }
    return out;
  }

  Status Seek(const std::string& consumer, size_t offset) override {
    if (offset > elements_.size()) {
      return Status::OutOfRange("seek past end of unordered log");
    }
    offsets_[consumer] = offset;
    return Status::OK();
  }

  std::optional<size_t> OffsetOf(const std::string& consumer) const override {
    auto it = offsets_.find(consumer);
    if (it == offsets_.end()) return std::nullopt;
    return it->second;
  }

 private:
  std::vector<StreamElement> elements_;
  std::map<std::string, size_t> offsets_;
};

// A sink that transiently rejects every `fail_every`-th delivery and
// forwards the rest to an optional inner sink.
class FlakySink final : public EmitSink {
 public:
  FlakySink(EmitSink* inner, int fail_every)
      : inner_(inner), fail_every_(fail_every) {}

  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override {
    ++calls_;
    if (fail_every_ > 0 && calls_ % fail_every_ == 0) {
      ++failures_;
      return Status::Unavailable("flaky sink: delivery #" +
                                 std::to_string(calls_) + " rejected");
    }
    ++accepted_;
    return inner_ != nullptr
               ? inner_->OnResult(query_name, evaluation_time, table)
               : Status::OK();
  }

  int64_t calls() const { return calls_; }
  int64_t failures() const { return failures_; }
  int64_t accepted() const { return accepted_; }

 private:
  EmitSink* inner_;
  int fail_every_;
  int64_t calls_ = 0;
  int64_t failures_ = 0;
  int64_t accepted_ = 0;
};

// A sink that fails exactly the given 1-based delivery numbers (or, with
// `fail_from`, every delivery from that number on) with a configurable
// status — kUnavailable to model recoverable hiccups, any other code to
// model a permanently broken consumer.
class FailNthSink final : public EmitSink {
 public:
  FailNthSink(std::set<int64_t> fail_on, Status failure)
      : fail_on_(std::move(fail_on)), failure_(std::move(failure)) {}
  static FailNthSink AlwaysFailingFrom(int64_t fail_from, Status failure) {
    FailNthSink sink({}, std::move(failure));
    sink.fail_from_ = fail_from;
    return sink;
  }

  Status OnResult(const std::string&, Timestamp,
                  const TimeAnnotatedTable&) override {
    ++calls_;
    bool fail = fail_on_.count(calls_) > 0 ||
                (fail_from_ > 0 && calls_ >= fail_from_);
    if (fail) {
      ++failures_;
      return failure_;
    }
    ++accepted_;
    return Status::OK();
  }

  int64_t calls() const { return calls_; }
  int64_t failures() const { return failures_; }
  int64_t accepted() const { return accepted_; }

 private:
  std::set<int64_t> fail_on_;
  int64_t fail_from_ = 0;
  Status failure_;
  int64_t calls_ = 0;
  int64_t failures_ = 0;
  int64_t accepted_ = 0;
};

}  // namespace seraph

#endif  // SERAPH_TESTS_FAULT_DOUBLES_H_
