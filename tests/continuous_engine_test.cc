// Continuous engine behaviour: registry, clock discipline, ET grid,
// per-MATCH windows, RETURN-once mode, multi-query timelines, query
// isolation, and serial/parallel equivalence.
#include <gtest/gtest.h>

#include <random>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id, int64_t kind) {
  return GraphBuilder()
      .Node(id, {kind == 0 ? "X" : "Y"},
            {{"id", Value::Int(id)}, {"k", Value::Int(id % 3)}})
      .Build();
}

std::string CountQuery(const char* name, const char* label,
                       const char* within, const char* every,
                       const char* policy = "SNAPSHOT") {
  std::string q = "REGISTER QUERY ";
  q += name;
  q += " STARTING AT '1970-01-01T00:05' { MATCH (n:";
  q += label;
  q += ") WITHIN ";
  q += within;
  q += " EMIT n.id ";
  q += policy;
  q += " EVERY ";
  q += every;
  q += " }";
  return q;
}

TEST(ContinuousEngineTest, RegistryLifecycle) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(CountQuery("a", "X", "PT5M", "PT5M")).ok());
  EXPECT_EQ(engine.RegisterText(CountQuery("a", "X", "PT5M", "PT5M")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(engine.RegisterText(CountQuery("b", "Y", "PT5M", "PT5M")).ok());
  EXPECT_EQ(engine.QueryNames(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(engine.Unregister("a").ok());
  EXPECT_EQ(engine.Unregister("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.QueryNames(), (std::vector<std::string>{"b"}));
}

TEST(ContinuousEngineTest, EvaluatesOnEtGrid) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q", "X", "PT10M", "PT5M")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(6)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(12)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(21)).ok());
  // ET = 5, 10, 15, 20.
  EXPECT_EQ(sink.ResultsFor("q").size(), 4u);
  EXPECT_TRUE(sink.ResultAt("q", T(5))->table.empty());
  EXPECT_EQ(sink.ResultAt("q", T(10))->table.size(), 1u);   // Element @6.
  EXPECT_EQ(sink.ResultAt("q", T(15))->table.size(), 2u);   // @6 and @12.
  EXPECT_EQ(sink.ResultAt("q", T(20))->table.size(), 1u);   // @6 expired.
}

TEST(ContinuousEngineTest, ClockDiscipline) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(10)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  // The clock cannot move backwards, and late elements are rejected.
  EXPECT_EQ(engine.AdvanceTo(T(15)).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.Ingest(Item(2, 0), T(15)).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(engine.Ingest(Item(2, 0), T(25)).ok());
}

TEST(ContinuousEngineTest, ReturnOnceEvaluatesExactlyOnce) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY once STARTING AT '1970-01-01T00:10'
    { MATCH (n:X) WITHIN PT10M RETURN n.id })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(5)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  EXPECT_EQ(sink.ResultsFor("once").size(), 1u);
  EXPECT_EQ(sink.ResultAt("once", T(10))->table.size(), 1u);
  // Advancing further does not re-evaluate.
  ASSERT_TRUE(engine.AdvanceTo(T(60)).ok());
  EXPECT_EQ(sink.ResultsFor("once").size(), 1u);
}

TEST(ContinuousEngineTest, PerMatchWindowWidths) {
  // A two-MATCH query: X within 5 minutes, Y within 30 — a Y element stays
  // joinable long after the X element that matched it expired.
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY join STARTING AT '1970-01-01T00:05'
    {
      MATCH (a:X) WITHIN PT5M
      MATCH (b:Y {k: a.k}) WITHIN PT30M
      EMIT a.id, b.id EVERY PT5M
    })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(3, 1), T(2)).ok());   // Y, k = 0.
  ASSERT_TRUE(engine.Ingest(Item(6, 0), T(12)).ok());  // X, k = 0.
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  // At 15: X@12 in (10,15], Y@2 in (−15,15] → join (6, 3).
  EXPECT_EQ(sink.ResultAt("join", T(15))->table.size(), 1u);
  // At 20: X@12 expired from the 5-minute window → no rows.
  EXPECT_TRUE(sink.ResultAt("join", T(20))->table.empty());
}

TEST(ContinuousEngineTest, MultiQueryChronologicalTimeline) {
  ContinuousEngine engine;
  struct OrderSink : EmitSink {
    std::vector<std::pair<std::string, Timestamp>> calls;
    Status OnResult(const std::string& name, Timestamp t,
                    const TimeAnnotatedTable&) override {
      calls.emplace_back(name, t);
      return Status::OK();
    }
  } sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(
      engine.RegisterText(CountQuery("fast", "X", "PT5M", "PT5M")).ok());
  ASSERT_TRUE(
      engine.RegisterText(CountQuery("slow", "X", "PT10M", "PT10M")).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  // Evaluations arrive in global time order.
  for (size_t i = 1; i < sink.calls.size(); ++i) {
    EXPECT_LE(sink.calls[i - 1].second, sink.calls[i].second);
  }
  // fast: 5,10,15,20 (4); slow: 5,15 (2).
  EXPECT_EQ(sink.calls.size(), 6u);
}

TEST(ContinuousEngineTest, ParametersReachQueries) {
  EngineOptions options;
  options.parameters = {{"min_id", Value::Int(2)}};
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY p STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT10M WHERE n.id >= $min_id
      EMIT n.id EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(2)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  EXPECT_EQ(sink.ResultAt("p", T(5))->table.size(), 1u);
}

// A query whose body fails at runtime (here: division by zero once a row
// exists) no longer aborts AdvanceTo; the error is recorded per query.
TEST(ContinuousEngineTest, QueryErrorIsRecordedNotSurfaced) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY boom STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT5M EMIT n.id / 0 EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  QueryStats stats = engine.StatsFor("boom").value();
  EXPECT_EQ(stats.eval_failures, 1);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kEvaluationError);
}

// Query isolation: a poisoned query must not affect a healthy one — the
// healthy query's results are identical to running it alone.
TEST(ContinuousEngineTest, PoisonedQueryIsIsolated) {
  auto drive = [](ContinuousEngine* engine) {
    ASSERT_TRUE(engine->Ingest(Item(1, 0), T(1)).ok());
    ASSERT_TRUE(engine->Ingest(Item(2, 0), T(8)).ok());
    ASSERT_TRUE(engine->AdvanceTo(T(20)).ok());
  };

  ContinuousEngine solo;
  CollectingSink solo_sink;
  solo.AddSink(&solo_sink);
  ASSERT_TRUE(
      solo.RegisterText(CountQuery("healthy", "X", "PT10M", "PT5M")).ok());
  drive(&solo);

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(
      engine.RegisterText(CountQuery("healthy", "X", "PT10M", "PT5M")).ok());
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY boom STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id / 0 EVERY PT5M })")
                  .ok());
  drive(&engine);

  const TimeVaryingTable& alone = solo_sink.ResultsFor("healthy");
  const TimeVaryingTable& together = sink.ResultsFor("healthy");
  ASSERT_EQ(alone.size(), together.size());
  for (size_t i = 0; i < alone.size(); ++i) {
    EXPECT_EQ(alone.entries()[i], together.entries()[i]) << "entry " << i;
  }
  // The poisoned query emitted nothing but recorded every failure.
  EXPECT_EQ(sink.ResultsFor("boom").size(), 0u);
  EXPECT_GT(engine.StatsFor("boom").value().eval_failures, 0);
}

// Failed evaluations advance the ET grid (no infinite re-fail of the same
// instant) and land in the dead-letter queue with their instant.
TEST(ContinuousEngineTest, FailedEvaluationsAreDeadLetteredAndGridAdvances) {
  DeadLetterQueue dead;
  EngineOptions options;
  options.dead_letter = &dead;
  options.query_error_budget = 0;  // Never disable: count every instant.
  ContinuousEngine engine(options);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY boom STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id / 0 EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  // ET = 5, 10, 15, 20 — each failed once and moved on.
  EXPECT_EQ(engine.StatsFor("boom").value().eval_failures, 4);
  ASSERT_EQ(dead.evaluation_failures(), 4);
  EXPECT_EQ(dead.entries()[0].kind, DeadLetterEntry::Kind::kEvaluation);
  EXPECT_EQ(dead.entries()[0].query, "boom");
  EXPECT_EQ(dead.entries()[0].timestamp, T(5));
  EXPECT_EQ(dead.entries()[3].timestamp, T(20));
}

// After `query_error_budget` consecutive failures the query is disabled
// (the fleet keeps running); ReviveQuery resumes it from where its grid
// stopped.
TEST(ContinuousEngineTest, ErrorBudgetDisablesAndReviveResumes) {
  EngineOptions options;
  options.query_error_budget = 2;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  // Fails while the element @1 is inside the 12-minute window (ET 5, 10);
  // evaluations at 15+ see an empty window and succeed.
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY flaky STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT12M EMIT n.id / 0 EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  EXPECT_TRUE(engine.QueryDisabled("flaky"));
  EXPECT_EQ(engine.StatsFor("flaky").value().eval_failures, 2);
  // Disabled queries stop being scheduled.
  ASSERT_TRUE(engine.AdvanceTo(T(40)).ok());
  EXPECT_EQ(engine.StatsFor("flaky").value().eval_failures, 2);
  EXPECT_EQ(sink.ResultsFor("flaky").size(), 0u);

  EXPECT_EQ(engine.ReviveQuery("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(engine.ReviveQuery("flaky").ok());
  EXPECT_FALSE(engine.QueryDisabled("flaky"));
  // Catch-up: the grid stopped after 10, so revival replays 15..40 — all
  // past the poison element's window, so they succeed and emit.
  ASSERT_TRUE(engine.AdvanceTo(T(40)).ok());
  EXPECT_FALSE(engine.QueryDisabled("flaky"));
  EXPECT_EQ(engine.StatsFor("flaky").value().eval_failures, 2);
  EXPECT_EQ(sink.ResultsFor("flaky").size(), 6u);  // ET 15..40.
}

// A failed evaluation must invalidate the unchanged-window reuse cache:
// it recorded its element ranges before failing, so if the next instant
// sees the same ranges, the reuse path would otherwise emit the last
// *successful* result (computed from different window content) and the
// content-deterministic error would never re-fire.
TEST(ContinuousEngineTest, FailedEvaluationInvalidatesReuse) {
  ContinuousEngine engine;  // reuse_unchanged_windows on by default.
  CollectingSink sink;
  engine.AddSink(&sink);
  // Content-dependent poison: the body divides by n.id, so an id = 0
  // element in the window makes the evaluation fail.
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT20M EMIT 10 / n.id EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(1)).ok());
  ASSERT_TRUE(engine.Ingest(Item(0, 0), T(8)).ok());  // Poison.
  // ET 5: window holds only id 2 → succeeds and emits.
  // ET 10: the poison entered → fails; the ranges it recorded cover both
  //        elements.
  // ET 15: the 20-minute window still covers exactly both elements — the
  //        ranges are unchanged relative to the FAILED evaluation, so a
  //        reuse here would replay ET 5's result. It must re-execute and
  //        fail again instead.
  ASSERT_TRUE(engine.AdvanceTo(T(15)).ok());
  QueryStats stats = engine.StatsFor("q").value();
  EXPECT_EQ(stats.eval_failures, 2);
  EXPECT_EQ(stats.reused_results, 0);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kEvaluationError);
  // Only ET 5 delivered; no stale table at 10 or 15.
  EXPECT_EQ(sink.ResultsFor("q").size(), 1u);
  ASSERT_TRUE(sink.ResultAt("q", T(5)).has_value());
  EXPECT_FALSE(sink.ResultAt("q", T(10)).has_value());
  EXPECT_FALSE(sink.ResultAt("q", T(15)).has_value());
}

// A RETURN-once query whose single evaluation fails is disabled (not
// marked done): the failure is observable via QueryDisabled, and
// ReviveQuery re-arms the evaluation at its original instant.
TEST(ContinuousEngineTest, FailedReturnOnceIsDisabledAndRevivable) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY once STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT10M RETURN n.id / 0 })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  EXPECT_TRUE(engine.QueryDisabled("once"));
  EXPECT_EQ(engine.StatsFor("once").value().eval_failures, 1);
  EXPECT_EQ(sink.ResultsFor("once").size(), 0u);
  // Disabled, not done: no re-evaluation while disabled...
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  EXPECT_EQ(engine.StatsFor("once").value().eval_failures, 1);
  // ...but revival re-arms the single evaluation (at the original ET 5 —
  // which re-fails here, proving the query was never marked done).
  ASSERT_TRUE(engine.ReviveQuery("once").ok());
  EXPECT_FALSE(engine.QueryDisabled("once"));
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  EXPECT_EQ(engine.StatsFor("once").value().eval_failures, 2);
  EXPECT_TRUE(engine.QueryDisabled("once"));
}

// Reading a stream by name is a pure lookup: it must not create the
// stream (the old accessor inserted an empty stream into the map, which
// both surprised callers and raced with parallel evaluation).
TEST(ContinuousEngineTest, ReadingAStreamDoesNotCreateIt) {
  ContinuousEngine engine;
  EXPECT_TRUE(engine.StreamNames().empty());
  EXPECT_TRUE(engine.stream("ghost").empty());
  EXPECT_TRUE(engine.stream().empty());
  EXPECT_TRUE(engine.StreamNames().empty());
  // Ingest and query registration do create streams (the latter eagerly,
  // so evaluation never mutates the map).
  ASSERT_TRUE(engine.IngestTo("s1", Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT5M FROM s2 EMIT n.id EVERY PT5M })")
                  .ok());
  EXPECT_EQ(engine.StreamNames(), (std::vector<std::string>{"s1", "s2"}));
  EXPECT_TRUE(engine.stream("s2").empty());
}

// Sink delivery order and content are identical at any thread count: the
// parallel scheduler only parallelizes stages 1-3 and delivers on the
// coordinator in the serial engine's (timestamp, query name) order.
TEST(ContinuousEngineTest, SerialParallelEquivalenceRandomized) {
  struct Delivery {
    std::string query;
    Timestamp t;
    TimeAnnotatedTable table;
  };
  struct OrderSink : EmitSink {
    std::vector<Delivery> calls;
    Status OnResult(const std::string& name, Timestamp t,
                    const TimeAnnotatedTable& table) override {
      calls.push_back({name, t, table});
      return Status::OK();
    }
  };

  std::mt19937 rng(20240806);
  for (int round = 0; round < 3; ++round) {
    // A randomized multi-query workload: mixed widths, cadences, offsets,
    // policies — plus one poisoned query to exercise isolation under
    // parallelism.
    std::vector<std::string> queries;
    const char* policies[] = {"SNAPSHOT", "ON ENTERING", "ON EXITING"};
    const char* widths[] = {"PT5M", "PT10M", "PT15M"};
    const char* cadences[] = {"PT5M", "PT10M"};
    const int num_queries = 6 + static_cast<int>(rng() % 6);
    for (int q = 0; q < num_queries; ++q) {
      std::string name = "q" + std::to_string(q);
      queries.push_back(CountQuery(name.c_str(), q % 2 == 0 ? "X" : "Y",
                                   widths[rng() % 3], cadences[rng() % 2],
                                   policies[rng() % 3]));
    }
    queries.push_back(
        "REGISTER QUERY poison STARTING AT '1970-01-01T00:05' "
        "{ MATCH (n:X) WITHIN PT20M EMIT n.id / 0 EVERY PT5M }");
    std::vector<std::pair<int64_t, int64_t>> elements;  // (minute, id).
    const int num_elements = 20 + static_cast<int>(rng() % 20);
    int64_t minute = 0;
    for (int e = 0; e < num_elements; ++e) {
      minute += static_cast<int64_t>(rng() % 4);
      elements.emplace_back(minute, e + 1);
    }

    auto run = [&](int eval_threads) {
      EngineOptions options;
      options.eval_threads = eval_threads;
      ContinuousEngine engine(options);
      OrderSink sink;
      engine.AddSink(&sink);
      for (const std::string& text : queries) {
        EXPECT_TRUE(engine.RegisterText(text).ok());
      }
      for (const auto& [min, id] : elements) {
        EXPECT_TRUE(engine.Ingest(Item(id, id % 2), T(min)).ok());
      }
      EXPECT_TRUE(engine.AdvanceTo(T(minute + 30)).ok());
      return std::move(sink.calls);
    };

    std::vector<Delivery> serial = run(1);
    std::vector<Delivery> parallel = run(EvalThreadsFromEnv(4));
    ASSERT_EQ(serial.size(), parallel.size()) << "round " << round;
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].query, parallel[i].query)
          << "round " << round << " delivery " << i;
      EXPECT_EQ(serial[i].t, parallel[i].t)
          << "round " << round << " delivery " << i;
      EXPECT_EQ(serial[i].table, parallel[i].table)
          << "round " << round << " delivery " << i;
    }
  }
}

// The scheduler exports its batching behaviour: batch sizes land in a
// histogram and parallel-executed evaluations are counted.
TEST(ContinuousEngineTest, ParallelSchedulerMetrics) {
  EngineOptions options;
  options.eval_threads = 4;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  for (int q = 0; q < 4; ++q) {
    std::string name = "q" + std::to_string(q);
    ASSERT_TRUE(
        engine.RegisterText(CountQuery(name.c_str(), "X", "PT10M", "PT5M"))
            .ok());
  }
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  // Two instants (5, 10) × 4 queries, all batched.
  EXPECT_EQ(engine.evaluations_run(), 8);
  EXPECT_EQ(
      engine.metrics().CounterFor("seraph_engine_parallel_evals_total")
          ->value(),
      8);
  HistogramSnapshot batches =
      engine.metrics().HistogramFor("seraph_engine_eval_batch_size")
          ->Snapshot();
  EXPECT_EQ(batches.count, 2);
  EXPECT_EQ(batches.max, 4);
}

TEST(ContinuousEngineTest, DrainProcessesToLastElement) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q", "X", "PT5M", "PT5M")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(7)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(18)).ok());
  ASSERT_TRUE(engine.Drain().ok());
  // ET due by 18: 5, 10, 15.
  EXPECT_EQ(sink.ResultsFor("q").size(), 3u);
}

}  // namespace
}  // namespace seraph
