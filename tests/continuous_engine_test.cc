// Continuous engine behaviour: registry, clock discipline, ET grid,
// per-MATCH windows, RETURN-once mode, multi-query timelines.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id, int64_t kind) {
  return GraphBuilder()
      .Node(id, {kind == 0 ? "X" : "Y"},
            {{"id", Value::Int(id)}, {"k", Value::Int(id % 3)}})
      .Build();
}

std::string CountQuery(const char* name, const char* label,
                       const char* within, const char* every,
                       const char* policy = "SNAPSHOT") {
  std::string q = "REGISTER QUERY ";
  q += name;
  q += " STARTING AT '1970-01-01T00:05' { MATCH (n:";
  q += label;
  q += ") WITHIN ";
  q += within;
  q += " EMIT n.id ";
  q += policy;
  q += " EVERY ";
  q += every;
  q += " }";
  return q;
}

TEST(ContinuousEngineTest, RegistryLifecycle) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(CountQuery("a", "X", "PT5M", "PT5M")).ok());
  EXPECT_EQ(engine.RegisterText(CountQuery("a", "X", "PT5M", "PT5M")).code(),
            StatusCode::kAlreadyExists);
  ASSERT_TRUE(engine.RegisterText(CountQuery("b", "Y", "PT5M", "PT5M")).ok());
  EXPECT_EQ(engine.QueryNames(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(engine.Unregister("a").ok());
  EXPECT_EQ(engine.Unregister("a").code(), StatusCode::kNotFound);
  EXPECT_EQ(engine.QueryNames(), (std::vector<std::string>{"b"}));
}

TEST(ContinuousEngineTest, EvaluatesOnEtGrid) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q", "X", "PT10M", "PT5M")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(6)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(12)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(21)).ok());
  // ET = 5, 10, 15, 20.
  EXPECT_EQ(sink.ResultsFor("q").size(), 4u);
  EXPECT_TRUE(sink.ResultAt("q", T(5))->table.empty());
  EXPECT_EQ(sink.ResultAt("q", T(10))->table.size(), 1u);   // Element @6.
  EXPECT_EQ(sink.ResultAt("q", T(15))->table.size(), 2u);   // @6 and @12.
  EXPECT_EQ(sink.ResultAt("q", T(20))->table.size(), 1u);   // @6 expired.
}

TEST(ContinuousEngineTest, ClockDiscipline) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(10)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  // The clock cannot move backwards, and late elements are rejected.
  EXPECT_EQ(engine.AdvanceTo(T(15)).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(engine.Ingest(Item(2, 0), T(15)).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(engine.Ingest(Item(2, 0), T(25)).ok());
}

TEST(ContinuousEngineTest, ReturnOnceEvaluatesExactlyOnce) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY once STARTING AT '1970-01-01T00:10'
    { MATCH (n:X) WITHIN PT10M RETURN n.id })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(5)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  EXPECT_EQ(sink.ResultsFor("once").size(), 1u);
  EXPECT_EQ(sink.ResultAt("once", T(10))->table.size(), 1u);
  // Advancing further does not re-evaluate.
  ASSERT_TRUE(engine.AdvanceTo(T(60)).ok());
  EXPECT_EQ(sink.ResultsFor("once").size(), 1u);
}

TEST(ContinuousEngineTest, PerMatchWindowWidths) {
  // A two-MATCH query: X within 5 minutes, Y within 30 — a Y element stays
  // joinable long after the X element that matched it expired.
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY join STARTING AT '1970-01-01T00:05'
    {
      MATCH (a:X) WITHIN PT5M
      MATCH (b:Y {k: a.k}) WITHIN PT30M
      EMIT a.id, b.id EVERY PT5M
    })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(3, 1), T(2)).ok());   // Y, k = 0.
  ASSERT_TRUE(engine.Ingest(Item(6, 0), T(12)).ok());  // X, k = 0.
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  // At 15: X@12 in (10,15], Y@2 in (−15,15] → join (6, 3).
  EXPECT_EQ(sink.ResultAt("join", T(15))->table.size(), 1u);
  // At 20: X@12 expired from the 5-minute window → no rows.
  EXPECT_TRUE(sink.ResultAt("join", T(20))->table.empty());
}

TEST(ContinuousEngineTest, MultiQueryChronologicalTimeline) {
  ContinuousEngine engine;
  struct OrderSink : EmitSink {
    std::vector<std::pair<std::string, Timestamp>> calls;
    Status OnResult(const std::string& name, Timestamp t,
                    const TimeAnnotatedTable&) override {
      calls.emplace_back(name, t);
      return Status::OK();
    }
  } sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(
      engine.RegisterText(CountQuery("fast", "X", "PT5M", "PT5M")).ok());
  ASSERT_TRUE(
      engine.RegisterText(CountQuery("slow", "X", "PT10M", "PT10M")).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  // Evaluations arrive in global time order.
  for (size_t i = 1; i < sink.calls.size(); ++i) {
    EXPECT_LE(sink.calls[i - 1].second, sink.calls[i].second);
  }
  // fast: 5,10,15,20 (4); slow: 5,15 (2).
  EXPECT_EQ(sink.calls.size(), 6u);
}

TEST(ContinuousEngineTest, ParametersReachQueries) {
  EngineOptions options;
  options.parameters = {{"min_id", Value::Int(2)}};
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY p STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT10M WHERE n.id >= $min_id
      EMIT n.id EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(2)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  EXPECT_EQ(sink.ResultAt("p", T(5))->table.size(), 1u);
}

TEST(ContinuousEngineTest, QueryErrorSurfacesFromAdvance) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY boom STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT5M EMIT n.id / 0 EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(1)).ok());
  Status s = engine.AdvanceTo(T(5));
  EXPECT_EQ(s.code(), StatusCode::kEvaluationError);
}

TEST(ContinuousEngineTest, DrainProcessesToLastElement) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q", "X", "PT5M", "PT5M")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1, 0), T(7)).ok());
  ASSERT_TRUE(engine.Ingest(Item(2, 0), T(18)).ok());
  ASSERT_TRUE(engine.Drain().ok());
  // ET due by 18: 5, 10, 15.
  EXPECT_EQ(sink.ResultsFor("q").size(), 3u);
}

}  // namespace
}  // namespace seraph
