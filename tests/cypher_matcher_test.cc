// Pattern-matching semantics: match(π, G, u) of Section 3.2.
#include <gtest/gtest.h>

#include "common/cancel.h"
#include "common/clock.h"
#include "cypher/executor.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"

namespace seraph {
namespace {

// Runs a full query (the executor is a thin pipeline over the matcher, and
// exercising it end-to-end keeps these tests at the semantics level).
Table RunQuery(const PropertyGraph& graph, std::string_view query) {
  auto parsed = ParseCypherQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*parsed, graph, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : Table();
}

PropertyGraph Triangle() {
  // (1:A)-[1:R]->(2:B)-[2:R]->(3:C)-[3:S]->(1:A)
  return GraphBuilder()
      .Node(1, {"A"}, {{"name", Value::String("a")}})
      .Node(2, {"B"}, {{"name", Value::String("b")}})
      .Node(3, {"C"}, {{"name", Value::String("c")}})
      .Rel(1, 1, 2, "R")
      .Rel(2, 2, 3, "R")
      .Rel(3, 3, 1, "S")
      .Build();
}

TEST(MatcherTest, NodeByLabel) {
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (n:A) RETURN n").size(), 1u);
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (n) RETURN n").size(), 3u);
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (n:Zed) RETURN n").size(), 0u);
}

TEST(MatcherTest, NodeByProperty) {
  Table t = RunQuery(Triangle(), "MATCH (n {name: 'b'}) RETURN n.name");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("n.name"), Value::String("b"));
}

TEST(MatcherTest, DirectedRelationships) {
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (a:A)-[r]->(b) RETURN b").size(), 1u);
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (a:A)<-[r]-(b) RETURN b").size(), 1u);
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (a:A)-[r]-(b) RETURN b").size(), 2u);
}

TEST(MatcherTest, RelationshipTypeFilter) {
  EXPECT_EQ(RunQuery(Triangle(), "MATCH ()-[r:R]->() RETURN r").size(), 2u);
  EXPECT_EQ(RunQuery(Triangle(), "MATCH ()-[r:S]->() RETURN r").size(), 1u);
  EXPECT_EQ(RunQuery(Triangle(), "MATCH ()-[r:R|S]->() RETURN r").size(), 3u);
}

TEST(MatcherTest, ChainJoinsOnSharedVariable) {
  Table t = RunQuery(Triangle(),
                "MATCH (a:A)-[:R]->(b)-[:R]->(c) RETURN c.name");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("c.name"), Value::String("c"));
}

TEST(MatcherTest, MultiplePatternsAreCrossJoinedWithRelUniqueness) {
  // Two anonymous single-rel patterns: 3 × 3 pairs minus same-rel pairs.
  Table t = RunQuery(Triangle(), "MATCH ()-[r1]->(), ()-[r2]->() RETURN r1, r2");
  EXPECT_EQ(t.size(), 6u);  // 3 * 2: r1 ≠ r2 enforced.
}

TEST(MatcherTest, BoundVariableReusePinsNode) {
  Table t = RunQuery(Triangle(),
                "MATCH (a:A)-[:R]->(b) MATCH (b)-[:R]->(c) RETURN c.name");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("c.name"), Value::String("c"));
}

TEST(MatcherTest, RelationshipUniquenessWithinClauseOnly) {
  // Within one MATCH the two rel patterns must bind distinct
  // relationships; across MATCH clauses reuse is allowed (Cypher rule).
  Table same_clause =
      RunQuery(Triangle(), "MATCH (a)-[r1:S]->(b), (c)-[r2:S]->(d) RETURN r1");
  EXPECT_EQ(same_clause.size(), 0u);
  Table cross_clause = RunQuery(
      Triangle(), "MATCH (a)-[r1:S]->(b) MATCH (c)-[r2:S]->(d) RETURN r1");
  EXPECT_EQ(cross_clause.size(), 1u);
}

TEST(MatcherTest, SelfLoopUndirectedCountedOnce) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"N"})
                        .Rel(1, 1, 1, "L")
                        .Build();
  EXPECT_EQ(RunQuery(g, "MATCH (a)-[r]-(b) RETURN r").size(), 1u);
}

TEST(MatcherTest, VariableLengthBasic) {
  // Paths from A of lengths 1..3 over R|S (rel-unique): 1→2, 1→2→3,
  // 1→2→3→1.
  Table t = RunQuery(Triangle(), "MATCH (a:A)-[:R|S*1..3]->(x) RETURN x.name");
  EXPECT_EQ(t.size(), 3u);
}

TEST(MatcherTest, VariableLengthMinBound) {
  Table t = RunQuery(Triangle(), "MATCH (a:A)-[:R|S*3..]->(x) RETURN x.name");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("x.name"), Value::String("a"));
}

TEST(MatcherTest, VariableLengthBindsRelationshipList) {
  Table t = RunQuery(Triangle(),
                "MATCH (a:A)-[rs:R*2..2]->(x) RETURN size(rs) AS n");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("n"), Value::Int(2));
}

TEST(MatcherTest, VariableLengthUndirected) {
  // Undirected *2..2 from A: 1-2-3 (via r1,r2) and 1-3-2 (via r3,r2).
  Table t = RunQuery(Triangle(), "MATCH (a:A)-[*2..2]-(x) RETURN x.name");
  EXPECT_EQ(t.size(), 2u);
}

TEST(MatcherTest, ZeroLengthVariableLength) {
  Table t = RunQuery(Triangle(), "MATCH (a:A)-[*0..1]->(x) RETURN x.name");
  // Length 0: x = a itself; length 1: x = b.
  EXPECT_EQ(t.size(), 2u);
}

TEST(MatcherTest, PathVariableCapturesNodesAndRels) {
  Table t = RunQuery(Triangle(),
                "MATCH p = (a:A)-[:R*2..2]->(c) "
                "RETURN length(p) AS len, "
                "[n IN nodes(p) | n.name] AS names, "
                "size(relationships(p)) AS m");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("len"), Value::Int(2));
  EXPECT_EQ(t.rows()[0].GetOrNull("m"), Value::Int(2));
  EXPECT_EQ(t.rows()[0].GetOrNull("names"),
            Value::MakeList({Value::String("a"), Value::String("b"),
                             Value::String("c")}));
}

TEST(MatcherTest, PropertyPatternMayReferenceBoundVariables) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"P"}, {{"tick", Value::Int(1)}})
                        .Node(2, {"P"}, {{"tick", Value::Int(2)}})
                        .Node(3, {"Q"}, {{"tick", Value::Int(1)}})
                        .Build();
  Table t = RunQuery(g, "MATCH (a:P) MATCH (b:Q {tick: a.tick}) RETURN a.tick");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("a.tick"), Value::Int(1));
}

// ---------------------------------------------------------------------------
// shortestPath
// ---------------------------------------------------------------------------

PropertyGraph Grid() {
  // 1 - 2 - 3 - 4 (chain) plus shortcut 1 - 5 - 4.
  return GraphBuilder()
      .Node(1, {"Src"})
      .Node(2, {"Mid"})
      .Node(3, {"Mid"})
      .Node(4, {"Dst"})
      .Node(5, {"Mid"})
      .Rel(1, 1, 2, "E")
      .Rel(2, 2, 3, "E")
      .Rel(3, 3, 4, "E")
      .Rel(4, 1, 5, "E")
      .Rel(5, 5, 4, "E")
      .Build();
}

TEST(MatcherTest, ShortestPathFindsMinimalLength) {
  Table t = RunQuery(Grid(),
                "MATCH p = shortestPath((a:Src)-[:E*..10]-(b:Dst)) "
                "RETURN length(p) AS len");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("len"), Value::Int(2));
}

TEST(MatcherTest, AllShortestPathsEnumeratesTies) {
  // Make both routes length 3: drop the shortcut, add 1-6-7-4.
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"Src"})
                        .Node(2, {"M"})
                        .Node(3, {"M"})
                        .Node(4, {"Dst"})
                        .Node(6, {"M"})
                        .Node(7, {"M"})
                        .Rel(1, 1, 2, "E")
                        .Rel(2, 2, 3, "E")
                        .Rel(3, 3, 4, "E")
                        .Rel(4, 1, 6, "E")
                        .Rel(5, 6, 7, "E")
                        .Rel(6, 7, 4, "E")
                        .Build();
  Table all = RunQuery(g,
                  "MATCH p = allShortestPaths((a:Src)-[:E*..10]-(b:Dst)) "
                  "RETURN length(p) AS len");
  EXPECT_EQ(all.size(), 2u);
  Table one = RunQuery(g,
                  "MATCH p = shortestPath((a:Src)-[:E*..10]-(b:Dst)) "
                  "RETURN length(p) AS len");
  EXPECT_EQ(one.size(), 1u);
}

TEST(MatcherTest, ShortestPathRespectsMaxHops) {
  Table t = RunQuery(Grid(),
                "MATCH p = shortestPath((a:Src)-[:E*..1]-(b:Dst)) "
                "RETURN p");
  EXPECT_EQ(t.size(), 0u);
}

TEST(MatcherTest, ShortestPathNoRouteNoMatch) {
  PropertyGraph g = GraphBuilder().Node(1, {"Src"}).Node(2, {"Dst"}).Build();
  Table t = RunQuery(g,
                "MATCH p = shortestPath((a:Src)-[*..5]-(b:Dst)) RETURN p");
  EXPECT_EQ(t.size(), 0u);
}

// ---------------------------------------------------------------------------
// OPTIONAL MATCH
// ---------------------------------------------------------------------------

TEST(MatcherTest, OptionalMatchPadsWithNulls) {
  Table t = RunQuery(Triangle(),
                "MATCH (n) OPTIONAL MATCH (n)-[:S]->(m) "
                "RETURN n.name, m.name");
  EXPECT_EQ(t.size(), 3u);
  int nulls = 0;
  for (const Record& row : t.rows()) {
    if (row.GetOrNull("m.name").is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 2);  // Only C has an outgoing S edge.
}

TEST(MatcherTest, OptionalMatchWhereParticipates) {
  Table t = RunQuery(Triangle(),
                "MATCH (n:A) OPTIONAL MATCH (n)-[r]->(m) WHERE m.name = 'z' "
                "RETURN n.name, m.name");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.rows()[0].GetOrNull("m.name").is_null());
}

// An expired cancellation token aborts the match at the next seed /
// expansion boundary with kDeadlineExceeded (docs/INTERNALS.md,
// "Overload & backpressure" — evaluation deadlines).
TEST(MatcherTest, ExpiredCancellationTokenAbortsTheMatch) {
  ManualClock clock(/*now_micros=*/1'000'000);
  CancellationToken token(&clock, /*deadline_micros=*/999'999);
  auto parsed = ParseCypherQuery("MATCH (a)-[r]->(b) RETURN b");
  ASSERT_TRUE(parsed.ok());
  ExecutionOptions options;
  options.cancellation = &token;
  auto result = ExecuteQueryOnGraph(*parsed, Triangle(), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // Without a token the same query succeeds — the deadline is opt-in.
  EXPECT_EQ(RunQuery(Triangle(), "MATCH (a)-[r]->(b) RETURN b").size(), 3u);
}

}  // namespace
}  // namespace seraph
