// Expression evaluation under Cypher's ternary logic.
#include <gtest/gtest.h>

#include "cypher/eval.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"

namespace seraph {
namespace {

class ExpressionTest : public ::testing::Test {
 protected:
  ExpressionTest() {
    graph_ = GraphBuilder()
                 .Node(1, {"Station"}, {{"id", Value::Int(1)}})
                 .Node(5, {"Bike", "E-Bike"}, {{"id", Value::Int(5)}})
                 .Rel(1, 5, 1, "rentedAt",
                      {{"user_id", Value::Int(1234)},
                       {"val_time", Value::DateTime(Timestamp::FromMillis(
                                        1000))}})
                 .Build();
    record_.Set("n", Value::Node(NodeId{5}));
    record_.Set("s", Value::Node(NodeId{1}));
    record_.Set("r", Value::Relationship(RelId{1}));
    record_.Set("x", Value::Int(10));
    record_.Set("nul", Value::Null());
  }

  Value Eval(std::string_view text) {
    auto expr = ParseCypherExpression(text);
    EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
    EvalContext ctx(&graph_, &record_);
    ctx.set_now(Timestamp::FromMillis(5000));
    auto v = (*expr)->Eval(ctx);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status();
    return v.ok() ? v.value() : Value::Null();
  }

  Status EvalError(std::string_view text) {
    auto expr = ParseCypherExpression(text);
    EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
    EvalContext ctx(&graph_, &record_);
    auto v = (*expr)->Eval(ctx);
    EXPECT_FALSE(v.ok()) << text;
    return v.ok() ? Status::OK() : v.status();
  }

  PropertyGraph graph_;
  Record record_;
};

TEST_F(ExpressionTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3"), Value::Int(7));
  EXPECT_EQ(Eval("7 / 2"), Value::Int(3));       // Integer division.
  EXPECT_EQ(Eval("7.0 / 2"), Value::Float(3.5));
  EXPECT_EQ(Eval("7 % 3"), Value::Int(1));
  EXPECT_EQ(Eval("2 ^ 10"), Value::Float(1024.0));
  EXPECT_EQ(Eval("-x"), Value::Int(-10));
  EXPECT_EQ(Eval("x - 1"), Value::Int(9));
}

TEST_F(ExpressionTest, ArithmeticNullPropagation) {
  EXPECT_TRUE(Eval("1 + nul").is_null());
  EXPECT_TRUE(Eval("nul * 3").is_null());
  EXPECT_TRUE(Eval("-nul").is_null());
}

TEST_F(ExpressionTest, DivisionByZeroIsError) {
  EXPECT_EQ(EvalError("1 / 0").code(), StatusCode::kEvaluationError);
  EXPECT_EQ(EvalError("1 % 0").code(), StatusCode::kEvaluationError);
}

TEST_F(ExpressionTest, StringConcatenation) {
  EXPECT_EQ(Eval("'a' + 'b'"), Value::String("ab"));
  EXPECT_EQ(Eval("'n=' + 5"), Value::String("n=5"));
}

TEST_F(ExpressionTest, ListConcatenation) {
  EXPECT_EQ(Eval("[1, 2] + [3]"),
            Value::MakeList({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval("[1] + 2"),
            Value::MakeList({Value::Int(1), Value::Int(2)}));
}

TEST_F(ExpressionTest, Comparisons) {
  EXPECT_EQ(Eval("1 < 2"), Value::Bool(true));
  EXPECT_EQ(Eval("2 <= 2"), Value::Bool(true));
  EXPECT_EQ(Eval("1 = 1.0"), Value::Bool(true));
  EXPECT_EQ(Eval("1 <> 2"), Value::Bool(true));
  EXPECT_EQ(Eval("'a' < 'b'"), Value::Bool(true));
  // Cross-type equality is false; cross-type ordering is null.
  EXPECT_EQ(Eval("1 = 'a'"), Value::Bool(false));
  EXPECT_TRUE(Eval("1 < 'a'").is_null());
  // Null propagates.
  EXPECT_TRUE(Eval("nul = 1").is_null());
  EXPECT_TRUE(Eval("nul = nul").is_null());
}

TEST_F(ExpressionTest, ComparisonChains) {
  EXPECT_EQ(Eval("1 <= 2 <= 3"), Value::Bool(true));
  EXPECT_EQ(Eval("1 <= 5 <= 3"), Value::Bool(false));
  EXPECT_EQ(Eval("1 < 2 < 3 < 4"), Value::Bool(true));
  // A definitive false short-circuits even with a null member.
  EXPECT_EQ(Eval("5 < 2 < nul"), Value::Bool(false));
  EXPECT_TRUE(Eval("1 < 2 < nul").is_null());
}

TEST_F(ExpressionTest, TernaryConnectives) {
  EXPECT_EQ(Eval("true AND false"), Value::Bool(false));
  EXPECT_TRUE(Eval("true AND nul").is_null());
  EXPECT_EQ(Eval("false AND nul"), Value::Bool(false));
  EXPECT_EQ(Eval("true OR nul"), Value::Bool(true));
  EXPECT_TRUE(Eval("false OR nul").is_null());
  EXPECT_TRUE(Eval("NOT nul").is_null());
  EXPECT_EQ(Eval("NOT false"), Value::Bool(true));
  EXPECT_TRUE(Eval("true XOR nul").is_null());
  EXPECT_EQ(Eval("true XOR false"), Value::Bool(true));
}

TEST_F(ExpressionTest, InOperator) {
  EXPECT_EQ(Eval("2 IN [1, 2, 3]"), Value::Bool(true));
  EXPECT_EQ(Eval("4 IN [1, 2, 3]"), Value::Bool(false));
  EXPECT_TRUE(Eval("4 IN [1, nul]").is_null());
  EXPECT_EQ(Eval("1 IN [1, nul]"), Value::Bool(true));
  EXPECT_TRUE(Eval("nul IN [1]").is_null());
  EXPECT_EQ(Eval("'Station' IN labels(s)"), Value::Bool(true));
}

TEST_F(ExpressionTest, IsNull) {
  EXPECT_EQ(Eval("nul IS NULL"), Value::Bool(true));
  EXPECT_EQ(Eval("x IS NULL"), Value::Bool(false));
  EXPECT_EQ(Eval("x IS NOT NULL"), Value::Bool(true));
  EXPECT_EQ(Eval("n.missing IS NULL"), Value::Bool(true));
}

TEST_F(ExpressionTest, StringPredicates) {
  record_.Set("s2", Value::String("hello world"));
  EXPECT_EQ(Eval("s2 STARTS WITH 'hello'"), Value::Bool(true));
  EXPECT_EQ(Eval("s2 ENDS WITH 'world'"), Value::Bool(true));
  EXPECT_EQ(Eval("s2 CONTAINS 'lo wo'"), Value::Bool(true));
  EXPECT_EQ(Eval("s2 STARTS WITH 'world'"), Value::Bool(false));
  EXPECT_TRUE(Eval("nul CONTAINS 'x'").is_null());
}

TEST_F(ExpressionTest, PropertyAccess) {
  EXPECT_EQ(Eval("n.id"), Value::Int(5));
  EXPECT_EQ(Eval("r.user_id"), Value::Int(1234));
  EXPECT_TRUE(Eval("r.duration IS NULL").AsBool());
  EXPECT_EQ(Eval("{a: 1}.a"), Value::Int(1));
  EXPECT_TRUE(Eval("nul.x").is_null());
}

TEST_F(ExpressionTest, Indexing) {
  EXPECT_EQ(Eval("[10, 20, 30][1]"), Value::Int(20));
  EXPECT_EQ(Eval("[10, 20, 30][-1]"), Value::Int(30));
  EXPECT_TRUE(Eval("[10][5]").is_null());
  EXPECT_EQ(Eval("{a: 1}['a']"), Value::Int(1));
}

TEST_F(ExpressionTest, GraphFunctions) {
  EXPECT_EQ(Eval("labels(n)"),
            Value::MakeList({Value::String("Bike"), Value::String("E-Bike")}));
  EXPECT_EQ(Eval("type(r)"), Value::String("rentedAt"));
  EXPECT_EQ(Eval("id(n)"), Value::Int(5));
  EXPECT_EQ(Eval("startNode(r)"), Value::Node(NodeId{5}));
  EXPECT_EQ(Eval("endNode(r)"), Value::Node(NodeId{1}));
  EXPECT_EQ(Eval("properties(r).user_id"), Value::Int(1234));
  EXPECT_EQ(Eval("keys(n)"), Value::MakeList({Value::String("id")}));
}

TEST_F(ExpressionTest, ListFunctions) {
  EXPECT_EQ(Eval("size([1, 2, 3])"), Value::Int(3));
  EXPECT_EQ(Eval("head([1, 2])"), Value::Int(1));
  EXPECT_EQ(Eval("last([1, 2])"), Value::Int(2));
  EXPECT_EQ(Eval("tail([1, 2, 3])"),
            Value::MakeList({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval("reverse([1, 2])"),
            Value::MakeList({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(Eval("range(1, 3)"),
            Value::MakeList({Value::Int(1), Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval("range(4, 0, -2)"),
            Value::MakeList({Value::Int(4), Value::Int(2), Value::Int(0)}));
  EXPECT_TRUE(Eval("head([])").is_null());
}

TEST_F(ExpressionTest, NumericFunctions) {
  EXPECT_EQ(Eval("abs(-5)"), Value::Int(5));
  EXPECT_EQ(Eval("sign(-2)"), Value::Int(-1));
  EXPECT_EQ(Eval("sqrt(9.0)"), Value::Float(3.0));
  EXPECT_EQ(Eval("floor(1.7)"), Value::Float(1.0));
  EXPECT_EQ(Eval("ceil(1.2)"), Value::Float(2.0));
  EXPECT_EQ(Eval("round(1.5)"), Value::Float(2.0));
}

TEST_F(ExpressionTest, ConversionFunctions) {
  EXPECT_EQ(Eval("toInteger('42')"), Value::Int(42));
  EXPECT_EQ(Eval("toInteger(3.9)"), Value::Int(3));
  EXPECT_EQ(Eval("toFloat('1.5')"), Value::Float(1.5));
  EXPECT_EQ(Eval("toString(42)"), Value::String("42"));
  EXPECT_TRUE(Eval("toInteger('nope')").is_null());
  EXPECT_EQ(Eval("coalesce(nul, nul, 7)"), Value::Int(7));
  EXPECT_TRUE(Eval("coalesce(nul, nul)").is_null());
}

TEST_F(ExpressionTest, StringFunctions) {
  EXPECT_EQ(Eval("toUpper('abc')"), Value::String("ABC"));
  EXPECT_EQ(Eval("toLower('ABC')"), Value::String("abc"));
  EXPECT_EQ(Eval("trim('  x  ')"), Value::String("x"));
  EXPECT_EQ(Eval("replace('aXbXc', 'X', '-')"), Value::String("a-b-c"));
  EXPECT_EQ(Eval("split('a,b', ',')"),
            Value::MakeList({Value::String("a"), Value::String("b")}));
  EXPECT_EQ(Eval("substring('hello', 1, 3)"), Value::String("ell"));
  EXPECT_EQ(Eval("left('hello', 2)"), Value::String("he"));
  EXPECT_EQ(Eval("right('hello', 2)"), Value::String("lo"));
}

TEST_F(ExpressionTest, TemporalFunctions) {
  EXPECT_EQ(Eval("datetime()"),
            Value::DateTime(Timestamp::FromMillis(5000)));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45')"),
            Value::DateTime(Timestamp::Parse("2022-10-14T14:45").value()));
  EXPECT_EQ(Eval("duration('PT5M')"),
            Value::Dur(Duration::FromMinutes(5)));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45') + duration('PT15M')"),
            Value::DateTime(Timestamp::Parse("2022-10-14T15:00").value()));
  EXPECT_EQ(
      Eval("datetime('2022-10-14T15:00') - datetime('2022-10-14T14:45')"),
      Value::Dur(Duration::FromMinutes(15)));
  EXPECT_EQ(Eval("r.val_time < datetime()"), Value::Bool(true));
}

TEST_F(ExpressionTest, TemporalComponentAccessors) {
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45:30').year"), Value::Int(2022));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45:30').month"), Value::Int(10));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45:30').day"), Value::Int(14));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45:30').hour"), Value::Int(14));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45:30').minute"), Value::Int(45));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45:30').second"), Value::Int(30));
  EXPECT_EQ(Eval("datetime('2022-10-14T14:45').second"), Value::Int(0));
  EXPECT_EQ(Eval("duration('PT1H30M').minutes"), Value::Int(90));
  EXPECT_EQ(Eval("duration('PT90S').seconds"), Value::Int(90));
  EXPECT_EQ(Eval("duration('P2D').hours"), Value::Int(48));
  EXPECT_EQ(EvalError("datetime('2022-10-14T14:45').nope").code(),
            StatusCode::kEvaluationError);
  EXPECT_EQ(EvalError("duration('PT1M').nope").code(),
            StatusCode::kEvaluationError);
}

TEST_F(ExpressionTest, ListComprehension) {
  EXPECT_EQ(Eval("[i IN [1, 2, 3, 4] WHERE i % 2 = 0 | i * 10]"),
            Value::MakeList({Value::Int(20), Value::Int(40)}));
  EXPECT_EQ(Eval("[i IN [1, 2] | i + 1]"),
            Value::MakeList({Value::Int(2), Value::Int(3)}));
  EXPECT_EQ(Eval("[i IN [1, 2, 3] WHERE i > 1]"),
            Value::MakeList({Value::Int(2), Value::Int(3)}));
  EXPECT_TRUE(Eval("[i IN nul | i]").is_null());
}

TEST_F(ExpressionTest, Quantifiers) {
  EXPECT_EQ(Eval("ALL(i IN [2, 4] WHERE i % 2 = 0)"), Value::Bool(true));
  EXPECT_EQ(Eval("ALL(i IN [2, 3] WHERE i % 2 = 0)"), Value::Bool(false));
  EXPECT_EQ(Eval("ALL(i IN [] WHERE false)"), Value::Bool(true));
  EXPECT_EQ(Eval("ANY(i IN [1, 2] WHERE i = 2)"), Value::Bool(true));
  EXPECT_EQ(Eval("NONE(i IN [1, 2] WHERE i = 3)"), Value::Bool(true));
  EXPECT_EQ(Eval("SINGLE(i IN [1, 2, 3] WHERE i = 2)"), Value::Bool(true));
  EXPECT_EQ(Eval("SINGLE(i IN [2, 2] WHERE i = 2)"), Value::Bool(false));
  // Ternary: unknown predicate outcomes poison definitive answers.
  EXPECT_TRUE(Eval("ALL(i IN [1, nul] WHERE i = 1)").is_null());
  EXPECT_EQ(Eval("ANY(i IN [1, nul] WHERE i = 1)"), Value::Bool(true));
}

TEST_F(ExpressionTest, CaseExpressions) {
  EXPECT_EQ(Eval("CASE WHEN x > 5 THEN 'big' ELSE 'small' END"),
            Value::String("big"));
  EXPECT_EQ(Eval("CASE x WHEN 10 THEN 'ten' ELSE '?' END"),
            Value::String("ten"));
  EXPECT_TRUE(Eval("CASE WHEN false THEN 1 END").is_null());
}

TEST_F(ExpressionTest, UnboundVariableIsError) {
  EXPECT_EQ(EvalError("no_such_var").code(), StatusCode::kEvaluationError);
}

TEST_F(ExpressionTest, AggregateOutsideProjectionIsError) {
  EXPECT_EQ(EvalError("count(x)").code(), StatusCode::kSemanticError);
}

TEST_F(ExpressionTest, Parameters) {
  auto expr = ParseCypherExpression("$threshold + 1");
  ASSERT_TRUE(expr.ok());
  EvalContext ctx(&graph_, &record_);
  std::map<std::string, Value> params{{"threshold", Value::Int(41)}};
  ctx.set_parameters(&params);
  auto v = (*expr)->Eval(ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(42));
}

TEST_F(ExpressionTest, WindowReservedNames) {
  auto expr = ParseCypherExpression("win_start <= r.val_time");
  ASSERT_TRUE(expr.ok());
  EvalContext ctx(&graph_, &record_);
  ctx.set_window(TimeInterval{Timestamp::FromMillis(0),
                              Timestamp::FromMillis(10'000)});
  auto v = (*expr)->Eval(ctx);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_EQ(*v, Value::Bool(true));
}

}  // namespace
}  // namespace seraph
