// Focused coverage of scalar built-ins and their error/null behaviour
// (complementing cypher_expression_test.cc's broader semantics tests).
#include <gtest/gtest.h>

#include "cypher/eval.h"
#include "cypher/functions.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"

namespace seraph {
namespace {

class FunctionsTest : public ::testing::Test {
 protected:
  FunctionsTest() {
    graph_ = GraphBuilder()
                 .Node(1, {"A"}, {{"x", Value::Int(1)}})
                 .Node(2, {"B"})
                 .Rel(7, 1, 2, "KNOWS", {{"w", Value::Int(3)}})
                 .Build();
    record_.Set("r", Value::Relationship(RelId{7}));
    record_.Set("nul", Value::Null());
  }

  Value Eval(std::string_view text) {
    auto expr = ParseCypherExpression(text);
    EXPECT_TRUE(expr.ok()) << text << ": " << expr.status();
    EvalContext ctx(&graph_, &record_);
    ctx.set_now(Timestamp::FromMillis(123456));
    auto v = (*expr)->Eval(ctx);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status();
    return v.ok() ? v.value() : Value::Null();
  }

  StatusCode ErrorCode(std::string_view text) {
    auto expr = ParseCypherExpression(text);
    EXPECT_TRUE(expr.ok()) << text;
    EvalContext ctx(&graph_, &record_);
    auto v = (*expr)->Eval(ctx);
    EXPECT_FALSE(v.ok()) << text;
    return v.ok() ? StatusCode::kOk : v.status().code();
  }

  PropertyGraph graph_;
  Record record_;
};

TEST_F(FunctionsTest, RegistryClassification) {
  EXPECT_TRUE(IsAggregateFunction("count"));
  EXPECT_TRUE(IsAggregateFunction("percentilecont"));
  EXPECT_FALSE(IsAggregateFunction("size"));
  EXPECT_TRUE(IsScalarFunction("labels"));
  EXPECT_TRUE(IsScalarFunction("tostring"));
  EXPECT_FALSE(IsScalarFunction("no_such_fn"));
}

TEST_F(FunctionsTest, MathFunctions) {
  EXPECT_EQ(Eval("exp(0)"), Value::Float(1.0));
  EXPECT_NEAR(Eval("log(exp(1))").AsFloat(), 1.0, 1e-9);
  EXPECT_EQ(Eval("log10(1000)"), Value::Float(3.0));
  EXPECT_EQ(Eval("abs(-2.5)"), Value::Float(2.5));
  EXPECT_EQ(Eval("sign(0)"), Value::Int(0));
  EXPECT_TRUE(Eval("sqrt(nul)").is_null());
}

TEST_F(FunctionsTest, MathTypeErrors) {
  EXPECT_EQ(ErrorCode("sqrt('x')"), StatusCode::kEvaluationError);
  EXPECT_EQ(ErrorCode("abs([1])"), StatusCode::kEvaluationError);
}

TEST_F(FunctionsTest, ToBoolean) {
  EXPECT_EQ(Eval("toBoolean('true')"), Value::Bool(true));
  EXPECT_EQ(Eval("toBoolean('false')"), Value::Bool(false));
  EXPECT_TRUE(Eval("toBoolean('yes')").is_null());
  EXPECT_EQ(Eval("toBoolean(true)"), Value::Bool(true));
  EXPECT_TRUE(Eval("toBoolean(nul)").is_null());
}

TEST_F(FunctionsTest, KeysOnEntitiesAndMaps) {
  EXPECT_EQ(Eval("keys(r)"), Value::MakeList({Value::String("w")}));
  EXPECT_EQ(Eval("keys({b: 1, a: 2})"),
            Value::MakeList({Value::String("a"), Value::String("b")}));
  EXPECT_TRUE(Eval("keys(nul)").is_null());
}

TEST_F(FunctionsTest, StartAndEndNode) {
  EXPECT_EQ(Eval("startNode(r)"), Value::Node(NodeId{1}));
  EXPECT_EQ(Eval("endNode(r)"), Value::Node(NodeId{2}));
  EXPECT_TRUE(Eval("startNode(nul)").is_null());
  EXPECT_EQ(ErrorCode("startNode(5)"), StatusCode::kEvaluationError);
}

TEST_F(FunctionsTest, TimestampAndDatetime) {
  EXPECT_EQ(Eval("timestamp()"), Value::Int(123456));
  EXPECT_EQ(Eval("datetime()"),
            Value::DateTime(Timestamp::FromMillis(123456)));
  EXPECT_EQ(ErrorCode("datetime('garbage')"),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ErrorCode("duration('garbage')"),
            StatusCode::kInvalidArgument);
}

TEST_F(FunctionsTest, SubstringEdgeCases) {
  EXPECT_EQ(Eval("substring('hello', 0)"), Value::String("hello"));
  EXPECT_EQ(Eval("substring('hello', 10)"), Value::String(""));
  EXPECT_EQ(Eval("substring('hello', 2, 0)"), Value::String(""));
  EXPECT_EQ(Eval("left('ab', 10)"), Value::String("ab"));
  EXPECT_EQ(Eval("right('ab', 10)"), Value::String("ab"));
}

TEST_F(FunctionsTest, SplitEdgeCases) {
  EXPECT_EQ(Eval("split('a', ',')"),
            Value::MakeList({Value::String("a")}));
  EXPECT_EQ(Eval("split(',', ',')"),
            Value::MakeList({Value::String(""), Value::String("")}));
  EXPECT_EQ(Eval("split('abc', '')"),
            Value::MakeList({Value::String("abc")}));
}

TEST_F(FunctionsTest, RangeErrors) {
  EXPECT_EQ(ErrorCode("range(1, 5, 0)"), StatusCode::kEvaluationError);
  EXPECT_EQ(ErrorCode("range(1.5, 5)"), StatusCode::kEvaluationError);
  EXPECT_EQ(Eval("range(5, 1)"), Value::MakeList({}));
}

TEST_F(FunctionsTest, ArityErrors) {
  EXPECT_EQ(ErrorCode("labels()"), StatusCode::kEvaluationError);
  EXPECT_EQ(ErrorCode("size(1, 2)"), StatusCode::kEvaluationError);
  EXPECT_EQ(ErrorCode("timestamp(1)"), StatusCode::kEvaluationError);
}

TEST_F(FunctionsTest, CoalesceVariadic) {
  EXPECT_EQ(Eval("coalesce(1)"), Value::Int(1));
  EXPECT_EQ(Eval("coalesce(nul, 'x', 'y')"), Value::String("x"));
  EXPECT_TRUE(Eval("coalesce()").is_null());
}

TEST_F(FunctionsTest, AggregateFolding) {
  // Direct ComputeAggregate coverage (the executor path is covered in
  // cypher_semantics_test).
  std::vector<Value> values = {Value::Int(3), Value::Null(), Value::Int(1),
                               Value::Int(3)};
  EXPECT_EQ(*ComputeAggregate("count", false, values), Value::Int(3));
  EXPECT_EQ(*ComputeAggregate("count", true, values), Value::Int(2));
  EXPECT_EQ(*ComputeAggregate("sum", false, values), Value::Int(7));
  EXPECT_EQ(*ComputeAggregate("min", false, values), Value::Int(1));
  EXPECT_EQ(*ComputeAggregate("max", false, values), Value::Int(3));
  EXPECT_EQ(ComputeAggregate("collect", true, values)->AsList().size(), 2u);
  // Empty inputs.
  EXPECT_EQ(*ComputeAggregate("sum", false, {}), Value::Int(0));
  EXPECT_TRUE(ComputeAggregate("avg", false, {})->is_null());
  EXPECT_TRUE(ComputeAggregate("min", false, {})->is_null());
  // Percentile needs its parameter.
  EXPECT_FALSE(ComputeAggregate("percentilecont", false, values).ok());
  EXPECT_EQ(*ComputeAggregate("percentilecont", false,
                              {Value::Int(1), Value::Int(3)},
                              Value::Float(1.0)),
            Value::Float(3.0));
  EXPECT_FALSE(ComputeAggregate("percentilecont", false, values,
                                Value::Float(2.0))
                   .ok());  // Out of [0, 1].
}

TEST_F(FunctionsTest, MixedIntFloatSum) {
  std::vector<Value> values = {Value::Int(1), Value::Float(0.5)};
  EXPECT_EQ(*ComputeAggregate("sum", false, values), Value::Float(1.5));
}

}  // namespace
}  // namespace seraph
