// Property graph streams (Defs. 5.2–5.3), the simulated event queue
// (Listing 4 transport), and substream selection.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "stream/event_queue.h"
#include "stream/graph_stream.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Tiny(int64_t id) {
  return GraphBuilder().Node(id, {"N"}, {{"id", Value::Int(id)}}).Build();
}

TEST(GraphStreamTest, AppendsInOrder) {
  PropertyGraphStream s;
  EXPECT_TRUE(s.Append(Tiny(1), T(10)).ok());
  EXPECT_TRUE(s.Append(Tiny(2), T(10)).ok());  // Equal timestamps allowed.
  EXPECT_TRUE(s.Append(Tiny(3), T(20)).ok());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.MaxTimestamp(), T(20));
}

TEST(GraphStreamTest, RejectsDecreasingTimestamps) {
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(Tiny(1), T(10)).ok());
  Status bad = s.Append(Tiny(2), T(5));
  EXPECT_EQ(bad.code(), StatusCode::kOutOfRange);
}

TEST(GraphStreamTest, SubstreamSelection) {
  PropertyGraphStream s;
  for (int64_t m : {10, 20, 30, 40}) {
    ASSERT_TRUE(s.Append(Tiny(m), T(m)).ok());
  }
  TimeInterval tau{T(10), T(30)};
  // [10, 30): elements at 10 and 20.
  auto closed_open =
      s.Substream(tau, IntervalBounds::kLeftClosedRightOpen);
  ASSERT_EQ(closed_open.size(), 2u);
  EXPECT_EQ(closed_open[0].timestamp, T(10));
  // (10, 30]: elements at 20 and 30.
  auto open_closed =
      s.Substream(tau, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_EQ(open_closed.size(), 2u);
  EXPECT_EQ(open_closed[1].timestamp, T(30));
}

TEST(GraphStreamTest, LowerBound) {
  PropertyGraphStream s;
  for (int64_t m : {10, 20, 20, 30}) {
    ASSERT_TRUE(s.Append(Tiny(m), T(m)).ok());
  }
  EXPECT_EQ(s.LowerBound(T(5)), 0u);
  EXPECT_EQ(s.LowerBound(T(20)), 1u);
  EXPECT_EQ(s.LowerBound(T(21)), 3u);
  EXPECT_EQ(s.LowerBound(T(99)), 4u);
}

TEST(GraphStreamTest, SharedGraphsNotCopiedPerAppend) {
  auto g = std::make_shared<const PropertyGraph>(Tiny(1));
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(g, T(1)).ok());
  ASSERT_TRUE(s.Append(g, T(2)).ok());
  EXPECT_EQ(s.at(0).graph.get(), s.at(1).graph.get());
}

TEST(EventQueueTest, ProduceAndPoll) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  ASSERT_TRUE(q.Produce(Tiny(3), T(3)).ok());
  q.Subscribe("engine");
  auto batch1 = q.Poll("engine", 2);
  ASSERT_TRUE(batch1.ok());
  ASSERT_EQ(batch1->size(), 2u);
  EXPECT_EQ((*batch1)[0].timestamp, T(1));
  auto batch2 = q.Poll("engine", 10);
  ASSERT_TRUE(batch2.ok());
  ASSERT_EQ(batch2->size(), 1u);
  EXPECT_EQ((*batch2)[0].timestamp, T(3));
  EXPECT_TRUE(q.Poll("engine", 10)->empty());
  ASSERT_TRUE(q.OffsetOf("engine").has_value());
  EXPECT_EQ(*q.OffsetOf("engine"), 3u);
}

TEST(EventQueueTest, IndependentConsumers) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  q.Subscribe("a");
  q.Subscribe("b");
  EXPECT_EQ(q.Poll("a", 10)->size(), 1u);
  EXPECT_EQ(q.Poll("b", 10)->size(), 1u);
}

TEST(EventQueueTest, SeekReplays) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  q.Subscribe("c");
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
  ASSERT_TRUE(q.Seek("c", 0).ok());
  ASSERT_TRUE(q.OffsetOf("c").has_value());
  EXPECT_EQ(*q.OffsetOf("c"), 0u);
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
  EXPECT_FALSE(q.Seek("c", 5).ok());
}

TEST(EventQueueTest, UnknownConsumerStartsAtZero) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  // An unknown consumer has no committed offset — distinguishable from a
  // subscribed consumer sitting at 0 (the recovery path depends on it).
  EXPECT_FALSE(q.OffsetOf("fresh").has_value());
  EXPECT_FALSE(q.HasConsumer("fresh"));
  EXPECT_EQ(q.Poll("fresh", 10)->size(), 1u);
  ASSERT_TRUE(q.OffsetOf("fresh").has_value());
  EXPECT_EQ(*q.OffsetOf("fresh"), 1u);
  EXPECT_TRUE(q.HasConsumer("fresh"));
}

}  // namespace
}  // namespace seraph
