// Property graph streams (Defs. 5.2–5.3), the simulated event queue
// (Listing 4 transport), and substream selection.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "stream/event_queue.h"
#include "stream/graph_stream.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Tiny(int64_t id) {
  return GraphBuilder().Node(id, {"N"}, {{"id", Value::Int(id)}}).Build();
}

TEST(GraphStreamTest, AppendsInOrder) {
  PropertyGraphStream s;
  EXPECT_TRUE(s.Append(Tiny(1), T(10)).ok());
  EXPECT_TRUE(s.Append(Tiny(2), T(10)).ok());  // Equal timestamps allowed.
  EXPECT_TRUE(s.Append(Tiny(3), T(20)).ok());
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.MaxTimestamp(), T(20));
}

TEST(GraphStreamTest, RejectsDecreasingTimestamps) {
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(Tiny(1), T(10)).ok());
  Status bad = s.Append(Tiny(2), T(5));
  EXPECT_EQ(bad.code(), StatusCode::kOutOfRange);
}

TEST(GraphStreamTest, SubstreamSelection) {
  PropertyGraphStream s;
  for (int64_t m : {10, 20, 30, 40}) {
    ASSERT_TRUE(s.Append(Tiny(m), T(m)).ok());
  }
  TimeInterval tau{T(10), T(30)};
  // [10, 30): elements at 10 and 20.
  auto closed_open =
      s.Substream(tau, IntervalBounds::kLeftClosedRightOpen);
  ASSERT_EQ(closed_open.size(), 2u);
  EXPECT_EQ(closed_open[0].timestamp, T(10));
  // (10, 30]: elements at 20 and 30.
  auto open_closed =
      s.Substream(tau, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_EQ(open_closed.size(), 2u);
  EXPECT_EQ(open_closed[1].timestamp, T(30));
}

TEST(GraphStreamTest, LowerBound) {
  PropertyGraphStream s;
  for (int64_t m : {10, 20, 20, 30}) {
    ASSERT_TRUE(s.Append(Tiny(m), T(m)).ok());
  }
  EXPECT_EQ(s.LowerBound(T(5)), 0u);
  EXPECT_EQ(s.LowerBound(T(20)), 1u);
  EXPECT_EQ(s.LowerBound(T(21)), 3u);
  EXPECT_EQ(s.LowerBound(T(99)), 4u);
}

TEST(GraphStreamTest, SharedGraphsNotCopiedPerAppend) {
  auto g = std::make_shared<const PropertyGraph>(Tiny(1));
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(g, T(1)).ok());
  ASSERT_TRUE(s.Append(g, T(2)).ok());
  EXPECT_EQ(s.at(0).graph.get(), s.at(1).graph.get());
}

TEST(EventQueueTest, ProduceAndPoll) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  ASSERT_TRUE(q.Produce(Tiny(3), T(3)).ok());
  q.Subscribe("engine");
  auto batch1 = q.Poll("engine", 2);
  ASSERT_TRUE(batch1.ok());
  ASSERT_EQ(batch1->size(), 2u);
  EXPECT_EQ((*batch1)[0].timestamp, T(1));
  auto batch2 = q.Poll("engine", 10);
  ASSERT_TRUE(batch2.ok());
  ASSERT_EQ(batch2->size(), 1u);
  EXPECT_EQ((*batch2)[0].timestamp, T(3));
  EXPECT_TRUE(q.Poll("engine", 10)->empty());
  ASSERT_TRUE(q.OffsetOf("engine").has_value());
  EXPECT_EQ(*q.OffsetOf("engine"), 3u);
}

TEST(EventQueueTest, IndependentConsumers) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  q.Subscribe("a");
  q.Subscribe("b");
  EXPECT_EQ(q.Poll("a", 10)->size(), 1u);
  EXPECT_EQ(q.Poll("b", 10)->size(), 1u);
}

TEST(EventQueueTest, SeekReplays) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  q.Subscribe("c");
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
  ASSERT_TRUE(q.Seek("c", 0).ok());
  ASSERT_TRUE(q.OffsetOf("c").has_value());
  EXPECT_EQ(*q.OffsetOf("c"), 0u);
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
  EXPECT_FALSE(q.Seek("c", 5).ok());
}

TEST(EventQueueTest, UnknownConsumerMustSubscribeBeforePolling) {
  EventQueue q;
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  // An unknown consumer has no committed offset — distinguishable from a
  // subscribed consumer sitting at 0 (the recovery path depends on it) —
  // and polling under it fails instead of implicitly registering it.
  EXPECT_FALSE(q.OffsetOf("fresh").has_value());
  EXPECT_FALSE(q.HasConsumer("fresh"));
  EXPECT_EQ(q.Poll("fresh", 10).status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(q.HasConsumer("fresh"));  // The failed poll left no trace.
  q.Subscribe("fresh");
  EXPECT_EQ(q.Poll("fresh", 10)->size(), 1u);
  ASSERT_TRUE(q.OffsetOf("fresh").has_value());
  EXPECT_EQ(*q.OffsetOf("fresh"), 1u);
  EXPECT_TRUE(q.HasConsumer("fresh"));
}

TEST(EventQueueTest, StrayPollCannotPinRetention) {
  // Regression: Poll used to default-insert an offset entry for any
  // never-seen name, and that phantom consumer joined the TrimCommitted
  // floor forever — one misspelled name froze retention and wedged a
  // bounded queue.
  EventQueue::Options options;
  options.capacity = 2;
  options.overflow_policy = OverflowPolicy::kReject;
  EventQueue q(options);
  q.Subscribe("engine");
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  EXPECT_FALSE(q.Poll("enigne", 10).ok());  // Typo'd consumer: rejected.
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  EXPECT_EQ(q.Poll("engine", 10)->size(), 2u);
  // With only the real consumer on the floor, the next produces trim the
  // committed prefix instead of wedging against a phantom at offset 0.
  ASSERT_TRUE(q.Produce(Tiny(3), T(3)).ok());
  ASSERT_TRUE(q.Produce(Tiny(4), T(4)).ok());
  EXPECT_EQ(q.base_offset(), 2u);
  EXPECT_EQ(q.rejected_total(), 0);
  // A *subscribed* idle consumer legitimately pins retention...
  q.Subscribe("inspector");
  EXPECT_EQ(q.Poll("engine", 10)->size(), 2u);
  EXPECT_EQ(q.Produce(Tiny(5), T(5)).code(), StatusCode::kUnavailable);
  // ...until it is detached explicitly, which releases its hold.
  EXPECT_TRUE(q.RemoveConsumer("inspector"));
  ASSERT_TRUE(q.Produce(Tiny(5), T(5)).ok());
  EXPECT_EQ(q.base_offset(), 4u);
  EXPECT_FALSE(q.RemoveConsumer("inspector"));  // Already gone.
}

// ---------------------------------------------------------------------------
// Bounded queue: overflow policies, retention trim, absolute offsets
// (docs/INTERNALS.md, "Overload & backpressure")
// ---------------------------------------------------------------------------

EventQueue::Options Bounded(size_t capacity, OverflowPolicy policy) {
  EventQueue::Options options;
  options.capacity = capacity;
  options.overflow_policy = policy;
  return options;
}

TEST(BoundedEventQueueTest, RejectPolicyRefusesWhenFull) {
  EventQueue q(Bounded(2, OverflowPolicy::kReject));
  q.Subscribe("c");
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  Status full = q.Produce(Tiny(3), T(3));
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_EQ(q.rejected_total(), 1);
  EXPECT_EQ(q.size(), 2u);  // A failed produce admits nothing.
  // Once the consumer commits past the retained entries, the next
  // produce trims them and succeeds: memory tracks lag, not history.
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
  ASSERT_TRUE(q.Produce(Tiny(3), T(3)).ok());
  EXPECT_EQ(q.trimmed_total(), 2);
  EXPECT_EQ(q.base_offset(), 2u);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.size(), 3u);  // Absolute: offsets are never renumbered.
  auto replay = q.Poll("c", 10);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->size(), 1u);
  EXPECT_EQ((*replay)[0].timestamp, T(3));
}

TEST(BoundedEventQueueTest, ShedOldestEvictsAndAccountsExactly) {
  EventQueue q(Bounded(2, OverflowPolicy::kShedOldest));
  std::vector<Timestamp> shed;
  q.SetShedCallback(
      [&](const StreamElement& e) { shed.push_back(e.timestamp); });
  q.Subscribe("c");
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  ASSERT_TRUE(q.Produce(Tiny(3), T(3)).ok());  // Evicts T(1).
  EXPECT_EQ(q.shed_total(), 1);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], T(1));
  // Delivered ∪ shed partitions the input exactly: the consumer sees
  // precisely the two survivors, from the bumped base offset.
  auto delivered = q.Poll("c", 10);
  ASSERT_TRUE(delivered.ok());
  ASSERT_EQ(delivered->size(), 2u);
  EXPECT_EQ((*delivered)[0].timestamp, T(2));
  EXPECT_EQ((*delivered)[1].timestamp, T(3));
  EXPECT_EQ(delivered->size() + shed.size(), 3u);
}

TEST(BoundedEventQueueTest, BlockPolicyWaitsInVirtualTime) {
  ManualClock clock(/*start_micros=*/0);
  EventQueue q(Bounded(1, OverflowPolicy::kBlock));
  q.SetClock(&clock);
  q.Subscribe("c");
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  // Nothing can free space (single-threaded, consumer idle): the blocked
  // produce accounts its bounded wait in virtual time — the pinned clock
  // never advances, so each attempt counts one virtual millisecond and
  // the call returns instead of hanging.
  Status full = q.Produce(Tiny(2), T(2));
  EXPECT_EQ(full.code(), StatusCode::kUnavailable);
  EXPECT_EQ(q.blocked_produces_total(), 1);
  EXPECT_GE(q.blocked_millis_total(), q.options().block_timeout_millis);
  EXPECT_EQ(q.rejected_total(), 1);
  // After the consumer commits, a blocked produce finds space via trim.
  EXPECT_EQ(q.Poll("c", 10)->size(), 1u);
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  EXPECT_EQ(q.blocked_produces_total(), 1);  // No wait was needed.
}

TEST(BoundedEventQueueTest, BlockedProduceIterationsAreBounded) {
  // Regression: the kBlock wait loop used to spin (TrimCommitted +
  // yield) across the full timeout. Under a pinned wall clock the loop
  // is purely virtual: exactly one iteration per accounted virtual
  // millisecond, no sleeping, deterministic.
  ManualClock clock(/*now_micros=*/0);
  EventQueue q(Bounded(1, OverflowPolicy::kBlock));
  q.SetClock(&clock);
  q.Subscribe("c");
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  const int64_t before = q.block_iterations_total();
  EXPECT_EQ(q.Produce(Tiny(2), T(2)).code(), StatusCode::kUnavailable);
  EXPECT_EQ(q.block_iterations_total() - before,
            q.options().block_timeout_millis);
}

// A clock that advances a fixed step per read — a stand-in for real time
// that keeps the test independent of scheduler jitter.
class SteppingClock final : public Clock {
 public:
  explicit SteppingClock(int64_t step_micros) : step_(step_micros) {}
  int64_t NowMicros() const override {
    return now_.fetch_add(step_, std::memory_order_relaxed) + step_;
  }

 private:
  mutable std::atomic<int64_t> now_{0};
  const int64_t step_;
};

TEST(BoundedEventQueueTest, BlockedProduceBacksOffOnRealClock) {
  // On an advancing clock each wait iteration sleeps with doubling
  // backoff instead of yielding, so the iteration count is a small
  // constant plus timeout/max_backoff — not timeout/yield-granularity.
  SteppingClock clock(/*step_micros=*/2000);
  EventQueue q(Bounded(1, OverflowPolicy::kBlock));
  q.SetClock(&clock);
  q.Subscribe("c");
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  const int64_t before = q.block_iterations_total();
  EXPECT_EQ(q.Produce(Tiny(2), T(2)).code(), StatusCode::kUnavailable);
  const int64_t iterations = q.block_iterations_total() - before;
  // 50 ms timeout at ≥2 ms accounted per iteration: ≤ ~25 iterations,
  // far below the one-per-millisecond virtual-time worst case.
  EXPECT_LE(iterations, q.options().block_timeout_millis / 2 + 1);
  EXPECT_GE(q.blocked_millis_total(), q.options().block_timeout_millis);
}

TEST(BoundedEventQueueTest, HorizonAlonePermitsTrimBeforeConsumerAttach) {
  // Regression: TrimCommitted returned early when no consumer had ever
  // attached, even with a valid checkpoint horizon — a bounded durable
  // run that produces before the driver subscribes wedged kBlock forever.
  ManualClock clock(/*now_micros=*/0);
  EventQueue q(Bounded(2, OverflowPolicy::kBlock));
  q.SetClock(&clock);
  ASSERT_TRUE(q.Produce(Tiny(1), T(1)).ok());
  ASSERT_TRUE(q.Produce(Tiny(2), T(2)).ok());
  // No consumers, no horizon: nothing is provably consumed, so the full
  // queue blocks (bounded, virtual time) and rejects.
  EXPECT_EQ(q.Produce(Tiny(3), T(3)).code(), StatusCode::kUnavailable);
  // A durable checkpoint covering the first entry permits trimming it
  // even though no consumer has attached yet.
  q.SetCheckpointHorizon(1);
  ASSERT_TRUE(q.Produce(Tiny(3), T(3)).ok());
  EXPECT_EQ(q.base_offset(), 1u);
  EXPECT_EQ(q.depth(), 2u);
  // A consumer attaching later starts at the oldest retained element and
  // joins the floor from there.
  q.Subscribe("c");
  EXPECT_EQ(*q.OffsetOf("c"), 1u);
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
}

TEST(BoundedEventQueueTest, CheckpointHorizonHoldsUncommittedSuffix) {
  EventQueue q;
  q.Subscribe("c");
  for (int64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(q.Produce(Tiny(i), T(i)).ok());
  }
  EXPECT_EQ(q.Poll("c", 10)->size(), 3u);
  // The consumer is at 3, but only offsets < 1 are durably checkpointed:
  // the replay suffix [1, 3) must stay retained.
  q.SetCheckpointHorizon(1);
  EXPECT_EQ(q.TrimCommitted(), 1u);
  EXPECT_EQ(q.base_offset(), 1u);
  EXPECT_EQ(q.depth(), 2u);
  // A later commit advances the horizon and releases the rest.
  q.SetCheckpointHorizon(3);
  EXPECT_EQ(q.TrimCommitted(), 2u);
  EXPECT_EQ(q.depth(), 0u);
  EXPECT_EQ(q.size(), 3u);
  // MaxTimestamp survives a trim-to-empty, and append order is still
  // enforced against the last appended element, not the retained ones.
  EXPECT_EQ(q.MaxTimestamp(), T(3));
  EXPECT_EQ(q.Produce(Tiny(9), T(2)).code(), StatusCode::kOutOfRange);
  ASSERT_TRUE(q.Produce(Tiny(4), T(4)).ok());
}

TEST(BoundedEventQueueTest, SeekBelowRetentionBaseFails) {
  EventQueue q(Bounded(2, OverflowPolicy::kShedOldest));
  q.Subscribe("c");
  for (int64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(q.Produce(Tiny(i), T(i)).ok());
  }
  Status below = q.Seek("c", 0);  // T(1) was shed; its offset is gone.
  EXPECT_EQ(below.code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(q.Seek("c", q.base_offset()).ok());
  EXPECT_EQ(q.Poll("c", 10)->size(), 2u);
}

TEST(BoundedEventQueueTest, RestoreOffsetMayLeadTheRefillingLog) {
  // The recovery path of a bounded tool: the checkpointed offset is
  // restored into an empty queue, then the event log is re-produced
  // behind it — the prefix is trimmed on admission, never delivered.
  EventQueue q(Bounded(2, OverflowPolicy::kReject));
  ASSERT_TRUE(q.RestoreOffset("c", 5).ok());
  for (int64_t i = 1; i <= 6; ++i) {
    ASSERT_TRUE(q.Produce(Tiny(i), T(i)).ok());
  }
  auto suffix = q.Poll("c", 10);
  ASSERT_TRUE(suffix.ok());
  ASSERT_EQ(suffix->size(), 1u);
  EXPECT_EQ((*suffix)[0].timestamp, T(6));
  EXPECT_EQ(q.rejected_total(), 0);  // Trim always made room.
}

TEST(GraphStreamTest, DropFrontKeepsOrderAndMaxTimestamp) {
  PropertyGraphStream s;
  for (int64_t m : {10, 20, 30}) {
    ASSERT_TRUE(s.Append(Tiny(m), T(m)).ok());
  }
  s.DropFront(2);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s.at(0).timestamp, T(30));
  EXPECT_EQ(s.MaxTimestamp(), T(30));
  s.DropFront(5);  // Over-trim clears.
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.MaxTimestamp(), T(30));
  EXPECT_EQ(s.Append(Tiny(1), T(20)).code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace seraph
