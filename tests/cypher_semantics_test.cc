// Clause-pipeline semantics (Section 3.2 / Fig. 7): WITH, UNWIND,
// aggregation, DISTINCT, ORDER BY / SKIP / LIMIT, UNION.
#include <gtest/gtest.h>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"

namespace seraph {
namespace {

Table RunQuery(const PropertyGraph& graph, std::string_view query) {
  auto parsed = ParseCypherQuery(query);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*parsed, graph, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : Table();
}

PropertyGraph People() {
  return GraphBuilder()
      .Node(1, {"Person"},
            {{"name", Value::String("ann")}, {"age", Value::Int(30)},
             {"city", Value::String("rome")}})
      .Node(2, {"Person"},
            {{"name", Value::String("bob")}, {"age", Value::Int(20)},
             {"city", Value::String("rome")}})
      .Node(3, {"Person"},
            {{"name", Value::String("cat")}, {"age", Value::Int(40)},
             {"city", Value::String("lyon")}})
      .Node(4, {"Person"},
            {{"name", Value::String("dan")}, {"age", Value::Int(20)},
             {"city", Value::String("lyon")}})
      .Rel(1, 1, 2, "KNOWS")
      .Rel(2, 1, 3, "KNOWS")
      .Rel(3, 3, 4, "KNOWS")
      .Build();
}

TEST(SemanticsTest, EvaluationStartsFromUnitTable) {
  // A query with no MATCH evaluates its projection once.
  Table t = RunQuery(PropertyGraph(), "RETURN 1 + 1 AS two");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("two"), Value::Int(2));
}

TEST(SemanticsTest, WhereFiltersTernary) {
  // n.missing > 0 evaluates to null → row dropped, not an error.
  Table t = RunQuery(People(), "MATCH (n:Person) WHERE n.missing > 0 RETURN n");
  EXPECT_EQ(t.size(), 0u);
}

TEST(SemanticsTest, WithProjectsAndDropsFields) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) WITH n.age AS age WHERE age < 25 "
                "RETURN age");
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.fields(), (std::set<std::string>{"age"}));
}

TEST(SemanticsTest, ReferencingDroppedFieldIsError) {
  auto parsed = ParseCypherQuery(
      "MATCH (n:Person) WITH n.age AS age RETURN n.name");
  ASSERT_TRUE(parsed.ok());
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*parsed, People(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kEvaluationError);
}

TEST(SemanticsTest, UnwindExpandsLists) {
  Table t = RunQuery(PropertyGraph(), "UNWIND [1, 2, 3] AS x RETURN x * 2 AS y");
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.rows()[2].GetOrNull("y"), Value::Int(6));
}

TEST(SemanticsTest, UnwindNullAndEmptyProduceNoRows) {
  EXPECT_EQ(RunQuery(PropertyGraph(), "UNWIND [] AS x RETURN x").size(), 0u);
  EXPECT_EQ(RunQuery(PropertyGraph(), "UNWIND null AS x RETURN x").size(), 0u);
}

TEST(SemanticsTest, CountStarAndGrouping) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) RETURN n.city AS city, count(*) AS c "
                "ORDER BY city");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rows()[0].GetOrNull("city"), Value::String("lyon"));
  EXPECT_EQ(t.rows()[0].GetOrNull("c"), Value::Int(2));
  EXPECT_EQ(t.rows()[1].GetOrNull("city"), Value::String("rome"));
  EXPECT_EQ(t.rows()[1].GetOrNull("c"), Value::Int(2));
}

TEST(SemanticsTest, AggregatesIgnoreNulls) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) RETURN count(n.missing) AS c, "
                "sum(n.age) AS s, avg(n.age) AS a, min(n.age) AS lo, "
                "max(n.age) AS hi");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("c"), Value::Int(0));
  EXPECT_EQ(t.rows()[0].GetOrNull("s"), Value::Int(110));
  EXPECT_EQ(t.rows()[0].GetOrNull("a"), Value::Float(27.5));
  EXPECT_EQ(t.rows()[0].GetOrNull("lo"), Value::Int(20));
  EXPECT_EQ(t.rows()[0].GetOrNull("hi"), Value::Int(40));
}

TEST(SemanticsTest, CollectAndDistinctAggregate) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) "
                "RETURN collect(n.age) AS ages, "
                "count(DISTINCT n.age) AS distinct_ages");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("ages").AsList().size(), 4u);
  EXPECT_EQ(t.rows()[0].GetOrNull("distinct_ages"), Value::Int(3));
}

TEST(SemanticsTest, AggregationOverEmptyInput) {
  Table t = RunQuery(People(), "MATCH (n:Ghost) RETURN count(*) AS c");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("c"), Value::Int(0));
  // With grouping keys, an empty input yields no groups.
  Table grouped =
      RunQuery(People(), "MATCH (n:Ghost) RETURN n.city AS city, count(*) AS c");
  EXPECT_EQ(grouped.size(), 0u);
}

TEST(SemanticsTest, StDevAndPercentiles) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) RETURN stDev(n.age) AS sd, "
                "stDevP(n.age) AS sdp, "
                "percentileCont(n.age, 0.5) AS med, "
                "percentileDisc(n.age, 0.5) AS medd");
  ASSERT_EQ(t.size(), 1u);
  // ages = 20, 20, 30, 40; mean 27.5.
  EXPECT_NEAR(t.rows()[0].GetOrNull("sd").AsFloat(), 9.574271, 1e-5);
  EXPECT_NEAR(t.rows()[0].GetOrNull("sdp").AsFloat(), 8.291562, 1e-5);
  EXPECT_DOUBLE_EQ(t.rows()[0].GetOrNull("med").AsFloat(), 25.0);
  EXPECT_DOUBLE_EQ(t.rows()[0].GetOrNull("medd").AsFloat(), 20.0);
}

TEST(SemanticsTest, AggregationMixedWithExpression) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) RETURN n.city AS city, "
                "avg(n.age) * 2 AS double_avg ORDER BY city");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t.rows()[0].GetOrNull("double_avg"), Value::Float(60.0));
}

TEST(SemanticsTest, WithAggregationThenMatch) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) WITH max(n.age) AS top "
                "MATCH (m:Person) WHERE m.age = top RETURN m.name");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.rows()[0].GetOrNull("m.name"), Value::String("cat"));
}

TEST(SemanticsTest, DistinctProjection) {
  Table t = RunQuery(People(), "MATCH (n:Person) RETURN DISTINCT n.city AS c");
  EXPECT_EQ(t.size(), 2u);
}

TEST(SemanticsTest, OrderBySkipLimit) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) RETURN n.name AS name "
                "ORDER BY n.age DESC, name SKIP 1 LIMIT 2");
  ASSERT_EQ(t.size(), 2u);
  // Order by age desc: cat(40), ann(30), bob(20), dan(20); skip cat.
  EXPECT_EQ(t.rows()[0].GetOrNull("name"), Value::String("ann"));
  EXPECT_EQ(t.rows()[1].GetOrNull("name"), Value::String("bob"));
}

TEST(SemanticsTest, OrderByNullsLast) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) "
                "RETURN CASE WHEN n.age > 25 THEN n.age ELSE null END AS v "
                "ORDER BY v");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t.rows()[0].GetOrNull("v"), Value::Int(30));
  EXPECT_TRUE(t.rows()[3].GetOrNull("v").is_null());
}

TEST(SemanticsTest, UnionDistinctAndAll) {
  Table distinct = RunQuery(People(),
                       "MATCH (n:Person) RETURN n.city AS c UNION "
                       "MATCH (n:Person) RETURN n.city AS c");
  EXPECT_EQ(distinct.size(), 2u);
  Table all = RunQuery(People(),
                  "MATCH (n:Person) RETURN n.city AS c UNION ALL "
                  "MATCH (n:Person) RETURN n.city AS c");
  EXPECT_EQ(all.size(), 8u);
}

TEST(SemanticsTest, UnionColumnMismatchIsError) {
  auto parsed = ParseCypherQuery(
      "MATCH (n) RETURN n.a AS x UNION MATCH (n) RETURN n.a AS y");
  ASSERT_TRUE(parsed.ok());
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*parsed, People(), options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kSemanticError);
}

TEST(SemanticsTest, ReturnStarKeepsAllFields) {
  Table t = RunQuery(People(),
                "MATCH (n:Person) WHERE n.name = 'ann' "
                "WITH n.name AS name, n.age AS age RETURN *");
  ASSERT_EQ(t.size(), 1u);
  EXPECT_EQ(t.fields(), (std::set<std::string>{"age", "name"}));
}

TEST(SemanticsTest, MatchPreservesInputMultiplicity) {
  // Bag semantics: each input row multiplies with each match.
  Table t = RunQuery(People(),
                "UNWIND [1, 2] AS i MATCH (n:Person {city: 'rome'}) "
                "RETURN i, n.name");
  EXPECT_EQ(t.size(), 4u);
}

TEST(SemanticsTest, DatetimeIsEvaluationTime) {
  auto parsed = ParseCypherQuery("RETURN datetime() AS now");
  ASSERT_TRUE(parsed.ok());
  ExecutionOptions options;
  options.now = Timestamp::Parse("2022-10-14T15:40").value();
  auto result = ExecuteQueryOnGraph(*parsed, PropertyGraph(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows()[0].GetOrNull("now"),
            Value::DateTime(options.now));
}

}  // namespace
}  // namespace seraph
