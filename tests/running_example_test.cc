// Golden reproduction of the paper's worked results:
//  * Table 2 — Listing 1 (one-time Cypher) at 15:40 over the merged store;
//  * Table 4 — Table 2 extended with win_start / win_end annotations;
//  * Table 5 — Listing 5 (Seraph, ON ENTERING) output at 15:15;
//  * Table 6 — Listing 5 output at 15:40;
// plus the §5.4 step-by-step narrative (nothing emitted at 14:45, 15:00,
// 15:20, ...).
#include <gtest/gtest.h>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "seraph/continuous_engine.h"
#include "seraph/polling_baseline.h"
#include "table/time_table.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

Timestamp Clock(int hour, int minute) {
  return Timestamp::FromCivil(2022, 10, 14, hour, minute).value();
}

Record ExpectedRow(int64_t user_id, int64_t station, int rent_h, int rent_m,
                   std::vector<int64_t> hops) {
  Record r;
  r.Set("r.user_id", Value::Int(user_id));
  r.Set("s.id", Value::Int(station));
  r.Set("r.val_time", Value::DateTime(Clock(rent_h, rent_m)));
  Value::List hop_values;
  for (int64_t h : hops) hop_values.push_back(Value::Int(h));
  r.Set("hops", Value::MakeList(std::move(hop_values)));
  return r;
}

// ---------------------------------------------------------------------------
// Table 2: the Cypher workaround at 15:40.
// ---------------------------------------------------------------------------

TEST(RunningExampleTest, Table2CypherQueryAt1540) {
  PropertyGraph store = workloads::BuildRunningExampleMergedGraph();
  auto query = ParseCypherQuery(workloads::RunningExampleCypherQuery());
  ASSERT_TRUE(query.ok()) << query.status();
  ExecutionOptions options;
  options.now = Clock(15, 40);
  auto result = ExecuteQueryOnGraph(*query, store, options);
  ASSERT_TRUE(result.ok()) << result.status();

  Table expected({"r.user_id", "s.id", "r.val_time", "hops"});
  expected.Append(ExpectedRow(1234, 1, 14, 40, {2, 3}));
  expected.Append(ExpectedRow(5678, 2, 14, 58, {3, 4}));
  EXPECT_EQ(*result, expected) << result->ToString();
}

TEST(RunningExampleTest, CypherQueryEarlierWindowsMatchNarrative) {
  // The same one-time query evaluated at earlier instants sees fewer
  // events (store restricted by val_time predicates only — the merged
  // store always holds everything already loaded).
  PropertyGraph store = workloads::BuildRunningExampleMergedGraph();
  auto query = ParseCypherQuery(workloads::RunningExampleCypherQuery());
  ASSERT_TRUE(query.ok());
  ExecutionOptions options;
  options.now = Clock(15, 15);
  auto result = ExecuteQueryOnGraph(*query, store, options);
  ASSERT_TRUE(result.ok()) << result.status();
  // At 15:15 only user 1234's pattern is complete.
  Table expected({"r.user_id", "s.id", "r.val_time", "hops"});
  expected.Append(ExpectedRow(1234, 1, 14, 40, {2, 3}));
  EXPECT_EQ(*result, expected) << result->ToString();
}

// ---------------------------------------------------------------------------
// Tables 5 / 6 and the §5.4 narrative: the Seraph continuous query.
// ---------------------------------------------------------------------------

class SeraphRunningExample : public ::testing::Test {
 protected:
  void RunAll(WindowSemantics semantics, bool incremental) {
    EngineOptions options;
    options.semantics = semantics;
    options.incremental_snapshots = incremental;
    engine_ = std::make_unique<ContinuousEngine>(options);
    engine_->AddSink(&sink_);
    ASSERT_TRUE(
        engine_->RegisterText(workloads::RunningExampleSeraphQuery()).ok());
    for (const auto& event : workloads::BuildRunningExampleStream()) {
      ASSERT_TRUE(engine_->Ingest(event.graph, event.timestamp).ok());
    }
    ASSERT_TRUE(engine_->AdvanceTo(Clock(15, 40)).ok());
  }

  Table ResultAt(int hour, int minute) {
    auto result = sink_.ResultAt("student_trick", Clock(hour, minute));
    EXPECT_TRUE(result.has_value());
    return result.has_value() ? result->table : Table();
  }

  TimeInterval WindowAt(int hour, int minute) {
    auto result = sink_.ResultAt("student_trick", Clock(hour, minute));
    EXPECT_TRUE(result.has_value());
    return result.has_value() ? result->window : TimeInterval{};
  }

  std::unique_ptr<ContinuousEngine> engine_;
  CollectingSink sink_;
};

TEST_F(SeraphRunningExample, Table5OutputAt1515) {
  RunAll(WindowSemantics::kLookback, /*incremental=*/true);
  Table expected({"r.user_id", "s.id", "r.val_time", "hops"});
  expected.Append(ExpectedRow(1234, 1, 14, 40, {2, 3}));
  EXPECT_EQ(ResultAt(15, 15), expected);
  // Window annotation: [14:15, 15:15].
  EXPECT_EQ(WindowAt(15, 15).start, Clock(14, 15));
  EXPECT_EQ(WindowAt(15, 15).end, Clock(15, 15));
}

TEST_F(SeraphRunningExample, Table6OutputAt1540OnlyNewMatch) {
  RunAll(WindowSemantics::kLookback, /*incremental=*/true);
  Table expected({"r.user_id", "s.id", "r.val_time", "hops"});
  expected.Append(ExpectedRow(5678, 2, 14, 58, {3, 4}));
  EXPECT_EQ(ResultAt(15, 40), expected);
  EXPECT_EQ(WindowAt(15, 40).start, Clock(14, 40));
  EXPECT_EQ(WindowAt(15, 40).end, Clock(15, 40));
}

TEST_F(SeraphRunningExample, NarrativeQuietEvaluations) {
  RunAll(WindowSemantics::kLookback, /*incremental=*/true);
  // 14:45, 14:50, ..., 15:10: no match yet. 15:20-15:35: no *new* match.
  for (auto [h, m] : std::vector<std::pair<int, int>>{
           {14, 45}, {14, 50}, {14, 55}, {15, 0}, {15, 5}, {15, 10},
           {15, 20}, {15, 25}, {15, 30}, {15, 35}}) {
    EXPECT_TRUE(ResultAt(h, m).empty())
        << "unexpected rows at " << h << ":" << m;
  }
  // Full ET grid from 14:45 to 15:40 inclusive = 12 evaluations.
  EXPECT_EQ(sink_.ResultsFor("student_trick").size(), 12u);
}

TEST_F(SeraphRunningExample, Table4AnnotatedShape) {
  RunAll(WindowSemantics::kLookback, /*incremental=*/true);
  Table annotated = TimeAnnotatedTable{ResultAt(15, 40), WindowAt(15, 40)}
                        .WithAnnotations();
  ASSERT_EQ(annotated.size(), 1u);
  const Record& row = annotated.rows()[0];
  EXPECT_EQ(row.GetOrNull("win_start"), Value::DateTime(Clock(14, 40)));
  EXPECT_EQ(row.GetOrNull("win_end"), Value::DateTime(Clock(15, 40)));
  EXPECT_EQ(row.GetOrNull("r.user_id"), Value::Int(5678));
}

TEST_F(SeraphRunningExample, RebuildModeProducesIdenticalResults) {
  RunAll(WindowSemantics::kLookback, /*incremental=*/false);
  Table expected5({"r.user_id", "s.id", "r.val_time", "hops"});
  expected5.Append(ExpectedRow(1234, 1, 14, 40, {2, 3}));
  EXPECT_EQ(ResultAt(15, 15), expected5);
  Table expected6({"r.user_id", "s.id", "r.val_time", "hops"});
  expected6.Append(ExpectedRow(5678, 2, 14, 58, {3, 4}));
  EXPECT_EQ(ResultAt(15, 40), expected6);
}

// ---------------------------------------------------------------------------
// The polling baseline reproduces Table 2 on its grid but re-reports old
// results (the §3.3 drawback ON ENTERING exists to fix).
// ---------------------------------------------------------------------------

TEST(RunningExampleTest, PollingBaselineRepeatsResults) {
  auto query = ParseCypherQuery(workloads::RunningExampleCypherQuery());
  ASSERT_TRUE(query.ok());
  PollingBaseline baseline(std::move(query).value(), Clock(14, 45),
                           Duration::FromMinutes(5));
  // Feed all events up-front (the connector merges as they arrive; here we
  // drive it at the end for simplicity of the due-poll bookkeeping).
  int64_t matches_at_1515 = -1;
  int64_t matches_at_1540 = -1;
  std::vector<workloads::Event> events =
      workloads::BuildRunningExampleStream();
  size_t next_event = 0;
  for (int i = 0; i <= 11; ++i) {
    Timestamp poll = Clock(14, 45) + Duration::FromMinutes(5 * i);
    while (next_event < events.size() &&
           events[next_event].timestamp <= poll) {
      ASSERT_TRUE(baseline.Ingest(events[next_event].graph).ok());
      ++next_event;
    }
    auto results = baseline.AdvanceTo(poll);
    ASSERT_TRUE(results.ok()) << results.status();
    for (const auto& [at, table] : *results) {
      if (at == Clock(15, 15)) matches_at_1515 = table.size();
      if (at == Clock(15, 40)) matches_at_1540 = table.size();
    }
  }
  EXPECT_EQ(baseline.polls_run(), 12);
  EXPECT_EQ(matches_at_1515, 1);
  // The baseline re-reports user 1234 at 15:40 alongside user 5678 — the
  // duplicate-reporting drawback of the workaround.
  EXPECT_EQ(matches_at_1540, 2);
}

}  // namespace
}  // namespace seraph
