// The Section-4.1 network-monitoring use case end-to-end: healthy racks
// stay quiet; failed uplinks push route lengths past the z-score threshold
// and are reported by the SNAPSHOT query.
#include <gtest/gtest.h>

#include "seraph/continuous_engine.h"
#include "workloads/network.h"

namespace seraph {
namespace {

TEST(NetworkUseCaseTest, HealthyNetworkReportsNothing) {
  workloads::NetworkConfig config;
  config.num_ticks = 12;
  config.failure_probability = 0.0;
  auto events = workloads::GenerateNetworkStream(config);

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(workloads::NetworkMonitoringSeraphQuery(
                      config.start + config.tick_period))
                  .ok());
  for (const auto& e : events) {
    ASSERT_TRUE(engine.Ingest(e.graph, e.timestamp).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());
  for (const auto& entry : sink.ResultsFor("network_monitor").entries()) {
    EXPECT_TRUE(entry.table.empty());
  }
}

TEST(NetworkUseCaseTest, FailedUplinksFlagAnomalousRoutes) {
  workloads::NetworkConfig config;
  config.num_ticks = 8;
  // Half the uplinks down per tick: detoured racks route over the rack
  // ring to a healthy neighbour, lengthening their shortest path to >= 6
  // hops (z >= 3.33). (With *all* uplinks down the fabric is unreachable
  // and nothing is reported — no route exists at all.)
  config.failure_probability = 0.5;
  auto events = workloads::GenerateNetworkStream(config);

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(workloads::NetworkMonitoringSeraphQuery(
                      config.start + config.tick_period))
                  .ok());
  for (const auto& e : events) {
    ASSERT_TRUE(engine.Ingest(e.graph, e.timestamp).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());

  const auto& entries = sink.ResultsFor("network_monitor").entries();
  ASSERT_FALSE(entries.empty());
  bool any_rows = false;
  for (const auto& entry : entries) {
    for (const Record& row : entry.table.rows()) {
      any_rows = true;
      // Every flagged route is a genuine detour within the hop cap.
      int64_t len = row.GetOrNull("len").AsInt();
      EXPECT_GE(len, 6);
      EXPECT_LE(len, 15);
    }
  }
  EXPECT_TRUE(any_rows);
}

TEST(NetworkUseCaseTest, PartialFailureFlagsOnlyDetouredRacks) {
  // Hand-crafted: exactly one tick with one failed rack. Use the
  // generator with probability 0 and surgically remove one primary link.
  workloads::NetworkConfig config;
  config.num_ticks = 1;
  config.failure_probability = 0.0;
  auto events = workloads::GenerateNetworkStream(config);
  ASSERT_EQ(events.size(), 1u);
  PropertyGraph g = events[0].graph;
  // Rack 0's primary uplink: find the CONNECTS rel from rack 0 (node id
  // kRackBase = 100) to a switch.
  NodeId rack0{100};
  RelId primary{0};
  for (RelId id : g.OutRelationships(rack0)) {
    const RelData* rel = g.relationship(id);
    const NodeData* other = g.node(rel->trg);
    if (other->labels.contains("Switch")) primary = id;
  }
  ASSERT_NE(primary.value, 0);
  g.RemoveRelationship(primary);

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(workloads::NetworkMonitoringSeraphQuery(
                      events[0].timestamp))
                  .ok());
  ASSERT_TRUE(engine.Ingest(std::move(g), events[0].timestamp).ok());
  ASSERT_TRUE(engine.Drain().ok());

  auto result = sink.ResultAt("network_monitor", events[0].timestamp);
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->table.size(), 1u);
  EXPECT_EQ(result->table.rows()[0].GetOrNull("r.rack_id"), Value::Int(0));
  EXPECT_EQ(result->table.rows()[0].GetOrNull("len"), Value::Int(6));
}

}  // namespace
}  // namespace seraph
