// Sharded-vs-single equivalence (docs/INTERNALS.md, "Sharded serving
// tier"): the merged output of a ShardedEngine must be bit-identical —
// content *and* global order — to a single ContinuousEngine run over the
// same routed streams, for every shard count, with and without intra-
// shard parallelism, and across an in-memory checkpoint/restore split
// mid-run. Randomized in the style of tests/delta_equivalence_test.cc:
// churned graph elements over bounded entity universes drive window
// updates, evictions, and rewires through a fleet of query shapes and
// report policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "io/json.h"
#include "seraph/continuous_engine.h"
#include "seraph/stream_router.h"
#include "shard/partitioner.h"
#include "shard/sharded_engine.h"

namespace seraph {
namespace {

// Round multiplier for fuzz loops; CI sets SERAPH_FUZZ_ROUNDS to fuzz
// harder under sanitizers without slowing local runs.
int FuzzRounds(int base) {
  if (const char* env = std::getenv("SERAPH_FUZZ_ROUNDS")) {
    long factor = std::strtol(env, nullptr, 10);
    if (factor > 1) return base * static_cast<int>(factor);
  }
  return base;
}

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

struct Event {
  int64_t minute;
  PropertyGraph graph;
};

// The delta-equivalence churn generator (bounded universes, pinned
// relationship definitions), trimmed to what the sharding contract
// needs: updates, rewires, and evictions under non-decreasing time.
std::vector<Event> ChurnEvents(uint32_t seed, int count) {
  std::mt19937 rng(seed);
  std::vector<Event> events;
  int64_t minute = 0;
  const int64_t node_universe = 30;
  const int64_t rel_universe = 60;
  struct RelDef {
    int64_t src, trg;
    std::string type;
  };
  std::map<int64_t, RelDef> rel_defs;
  for (int e = 0; e < count; ++e) {
    minute += static_cast<int64_t>(rng() % 3);
    GraphBuilder builder;
    const int nodes = 2 + static_cast<int>(rng() % 4);
    const int rels = 2 + static_cast<int>(rng() % 5);
    std::vector<int64_t> ids;
    for (int i = 0; i < nodes; ++i) {
      int64_t id = 1 + static_cast<int64_t>(rng() % node_universe);
      ids.push_back(id);
      std::vector<std::string> labels;
      switch (rng() % 4) {
        case 0: labels = {"A"}; break;
        case 1: labels = {"B"}; break;
        case 2: labels = {"A", "B"}; break;
        default: break;  // Unlabelled.
      }
      builder.Node(id, labels,
                   {{"v", Value::Int(static_cast<int64_t>(rng() % 10))}});
    }
    std::set<int64_t> used_rel_ids;
    for (int i = 0; i < rels; ++i) {
      int64_t id = 1 + static_cast<int64_t>(rng() % rel_universe);
      if (!used_rel_ids.insert(id).second) continue;
      auto def = rel_defs.find(id);
      if (def == rel_defs.end()) {
        int64_t src = ids[rng() % ids.size()];
        int64_t trg = (rng() % 8 == 0) ? src : ids[rng() % ids.size()];
        def = rel_defs
                  .emplace(id, RelDef{src, trg, (rng() % 3 == 0) ? "S" : "R"})
                  .first;
      } else {
        builder.Node(def->second.src, std::vector<std::string>{});
        builder.Node(def->second.trg, std::vector<std::string>{});
      }
      builder.Rel(id, def->second.src, def->second.trg, def->second.type,
                  {{"w", Value::Int(static_cast<int64_t>(rng() % 5))}});
    }
    events.push_back({minute, builder.Build()});
  }
  return events;
}

// Query fleet: shapes × report policies, each windowing over `from`
// (empty = default stream). Names sort in registration order on both
// sides, so the single engine's within-instant emission order (its
// registration order) coincides with the merge's (t, query) order — the
// precondition for comparing the two byte streams 1:1.
struct Shape {
  const char* name;
  const char* body;
};

const Shape kShapes[] = {
    {"hop", "MATCH (a:A)-[r:R]->(b) WITHIN PT10M{FROM} EMIT a.v AS av, b.v AS bv"},
    {"chain",
     "MATCH (a)-[:R]->(b)-[:S]->(c) WITHIN PT15M{FROM} EMIT a.v AS x, c.v AS z"},
    {"undirected", "MATCH (a:B)-[r]-(b) WITHIN PT10M{FROM} EMIT b.v AS bv"},
    {"filtered",
     "MATCH (a:A)-[r:R]->(b) WITHIN PT10M{FROM} WHERE a.v < b.v "
     "EMIT a.v AS av, b.v AS bv"},
    {"agg", "MATCH (a:A)-[r:R]->(b) WITHIN PT10M{FROM} EMIT count(r) AS c"},
};

const char* const kPolicies[] = {"SNAPSHOT", "ON ENTERING", "ON EXITING"};

struct NamedQuery {
  std::string name;
  std::string text;
};

std::vector<NamedQuery> Fleet(const std::string& from_stream) {
  std::vector<NamedQuery> fleet;
  for (const Shape& shape : kShapes) {
    for (size_t p = 0; p < 3; ++p) {
      const std::string name =
          std::string(shape.name) + "_p" + std::to_string(p);
      std::string body = shape.body;
      const std::string from =
          from_stream.empty() ? "" : " FROM " + from_stream;
      body.replace(body.find("{FROM}"), 6, from);
      fleet.push_back({name, "REGISTER QUERY " + name +
                                 " STARTING AT '1970-01-01T00:05' { " + body +
                                 " " + kPolicies[p] + " EVERY PT5M }"});
    }
  }
  return fleet;
}

std::vector<NamedQuery> SortedByName(std::vector<NamedQuery> fleet) {
  std::sort(fleet.begin(), fleet.end(),
            [](const NamedQuery& a, const NamedQuery& b) {
              return a.name < b.name;
            });
  return fleet;
}

// One emission as the sink saw it — evaluation time, query, canonical
// row bytes. The equivalence assertions compare entire sequences of
// these, so global order is part of the contract, not just content.
struct Emission {
  int64_t t_millis;
  std::string query;
  std::string window;
  std::string json;

  bool operator==(const Emission& other) const {
    return t_millis == other.t_millis && query == other.query &&
           window == other.window && json == other.json;
  }
};

class SeqSink final : public EmitSink {
 public:
  Status OnResult(const std::string& query_name, Timestamp evaluation_time,
                  const TimeAnnotatedTable& table) override {
    emissions_.push_back(Emission{
        evaluation_time.millis(), query_name,
        table.window.ToString(), io::ToJson(table)});
    return Status::OK();
  }
  const std::vector<Emission>& emissions() const { return emissions_; }

 private:
  std::vector<Emission> emissions_;
};

// A logical route, instantiated as a StreamRouter route on the single
// engine and as a partitioned fleet route on the sharded one.
struct RouteSpec {
  std::string stream;
  StreamRouter::Predicate predicate;
  std::shared_ptr<const shard::Partitioner> partitioner;
};

std::vector<RouteSpec> BroadcastOnly() {
  return {{"", AcceptAll(), shard::Broadcast()}};
}

// The oracle: one engine, one router, advance after every event — the
// same cadence the fleet pumps at.
std::vector<Emission> RunSingle(const std::vector<RouteSpec>& routes,
                                const std::vector<NamedQuery>& fleet,
                                const std::vector<Event>& events) {
  ContinuousEngine engine;
  SeqSink sink;
  engine.AddSink(&sink);
  StreamRouter router;
  for (const RouteSpec& route : routes) {
    router.AddRoute(route.stream, route.predicate);
  }
  for (const NamedQuery& query : fleet) {
    EXPECT_TRUE(engine.RegisterText(query.text).ok()) << query.text;
  }
  for (const Event& event : events) {
    EXPECT_TRUE(router
                    .Route(&engine,
                           std::make_shared<const PropertyGraph>(event.graph),
                           T(event.minute))
                    .ok());
    EXPECT_TRUE(engine.AdvanceTo(T(event.minute)).ok());
  }
  return sink.emissions();
}

std::vector<Emission> RunSharded(int shards, const EngineOptions& engine_opts,
                                 const std::vector<RouteSpec>& routes,
                                 const std::vector<NamedQuery>& fleet,
                                 const std::vector<Event>& events) {
  shard::ShardedEngineOptions options;
  options.shards = shards;
  options.engine = engine_opts;
  shard::ShardedEngine sharded(options);
  SeqSink sink;
  sharded.AddSink(&sink);
  for (const RouteSpec& route : routes) {
    sharded.AddRoute(route.stream, route.predicate, route.partitioner);
  }
  for (const NamedQuery& query : fleet) {
    auto placement = sharded.RegisterText(query.text);
    EXPECT_TRUE(placement.ok()) << placement.status();
  }
  for (const Event& event : events) {
    EXPECT_TRUE(sharded.Ingest(event.graph, T(event.minute)).ok());
    EXPECT_TRUE(sharded.PumpAll().ok());
  }
  EXPECT_TRUE(sharded.Finish().ok());
  return sink.emissions();
}

void ExpectSequencesIdentical(const std::vector<Emission>& expected,
                              const std::vector<Emission>& actual,
                              const std::string& context) {
  ASSERT_EQ(expected.size(), actual.size()) << context;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_TRUE(expected[i] == actual[i])
        << context << ": emission " << i << " diverged\n  single: t="
        << expected[i].t_millis << " q=" << expected[i].query << " "
        << expected[i].json << "\n  sharded: t=" << actual[i].t_millis
        << " q=" << actual[i].query << " " << actual[i].json;
  }
}

// The tentpole property: for shard counts {1, 2, 4}, a broadcast fleet's
// merged output is byte-for-byte the single-engine run — same emissions,
// same global (t, query) order — across randomized churn streams.
TEST(ShardedEquivalenceTest, BroadcastFleetBitIdenticalAcrossShardCounts) {
  const int rounds = FuzzRounds(3);
  const std::vector<NamedQuery> fleet = SortedByName(Fleet(""));
  for (int round = 0; round < rounds; ++round) {
    const std::vector<Event> events =
        ChurnEvents(/*seed=*/901 + 17 * static_cast<uint32_t>(round), 40);
    const std::vector<Emission> expected =
        RunSingle(BroadcastOnly(), fleet, events);
    ASSERT_FALSE(expected.empty());
    for (int shards : {1, 2, 4}) {
      ExpectSequencesIdentical(
          expected,
          RunSharded(shards, EngineOptions{}, BroadcastOnly(), fleet, events),
          "round " + std::to_string(round) + " shards " +
              std::to_string(shards));
    }
  }
}

// Parallelism inside each shard (parallel evaluation + morsel matching)
// must not perturb the merged order: the watermark hold-back decouples
// release order from pump interleaving.
TEST(ShardedEquivalenceTest, ParallelShardsPreserveMergedOrder) {
  const std::vector<NamedQuery> fleet = SortedByName(Fleet(""));
  const std::vector<Event> events = ChurnEvents(/*seed=*/77, 40);
  const std::vector<Emission> expected =
      RunSingle(BroadcastOnly(), fleet, events);
  ASSERT_FALSE(expected.empty());
  EngineOptions parallel;
  parallel.eval_threads = 4;
  parallel.match_threads = 2;
  for (int shards : {2, 4}) {
    ExpectSequencesIdentical(
        expected,
        RunSharded(shards, parallel, BroadcastOnly(), fleet, events),
        "parallel shards " + std::to_string(shards));
  }
}

// Label/property-predicate routes pinned to fixed shards: queries over
// the pinned sub-streams run on different shards, yet the merged output
// still matches a single engine routing the same predicates.
TEST(ShardedEquivalenceTest, FixedShardRoutesStayBitIdentical) {
  auto routes = [](int pinned_a, int pinned_b) {
    std::vector<RouteSpec> specs = BroadcastOnly();
    specs.push_back({"alpha", HasLabel("A"), shard::FixedShard(pinned_a)});
    specs.push_back({"beta", HasLabel("B"), shard::FixedShard(pinned_b)});
    return specs;
  };
  std::vector<NamedQuery> fleet = SortedByName(Fleet(""));
  for (NamedQuery& query : Fleet("alpha")) {
    query.name = "al_" + query.name;
    const size_t at = query.text.find("QUERY ") + 6;
    query.text.insert(at, "al_");
    fleet.push_back(query);
  }
  for (NamedQuery& query : Fleet("beta")) {
    query.name = "be_" + query.name;
    const size_t at = query.text.find("QUERY ") + 6;
    query.text.insert(at, "be_");
    fleet.push_back(query);
  }
  fleet = SortedByName(std::move(fleet));

  const int rounds = FuzzRounds(2);
  for (int round = 0; round < rounds; ++round) {
    const std::vector<Event> events =
        ChurnEvents(/*seed=*/4040 + 13 * static_cast<uint32_t>(round), 35);
    const std::vector<Emission> expected =
        RunSingle(routes(0, 1), fleet, events);
    ASSERT_FALSE(expected.empty());
    for (int shards : {2, 4}) {
      ExpectSequencesIdentical(
          expected,
          RunSharded(shards, EngineOptions{}, routes(0, shards - 1), fleet,
                     events),
          "routed shards " + std::to_string(shards));
    }
  }
}

// Checkpoint/restore mid-run: capture the fleet after a prefix, restore
// into a fresh fleet, continue with the suffix — the concatenated
// emissions are exactly the uninterrupted single-engine run.
TEST(ShardedEquivalenceTest, RestoreMidRunConcatenatesToTheOracle) {
  const std::vector<NamedQuery> fleet = SortedByName(Fleet(""));
  const int rounds = FuzzRounds(2);
  for (int round = 0; round < rounds; ++round) {
    const std::vector<Event> events =
        ChurnEvents(/*seed=*/6107 + 29 * static_cast<uint32_t>(round), 40);
    const std::vector<Emission> expected =
        RunSingle(BroadcastOnly(), fleet, events);
    ASSERT_FALSE(expected.empty());
    const size_t cut = events.size() / 2;

    for (int shards : {2, 4}) {
      SCOPED_TRACE("restore shards " + std::to_string(shards));
      shard::ShardedEngineOptions options;
      options.shards = shards;

      shard::ShardedEngine first(options);
      SeqSink prefix;
      first.AddSink(&prefix);
      for (const NamedQuery& query : fleet) {
        ASSERT_TRUE(first.RegisterText(query.text).ok());
      }
      for (size_t e = 0; e < cut; ++e) {
        ASSERT_TRUE(first.Ingest(events[e].graph, T(events[e].minute)).ok());
        ASSERT_TRUE(first.PumpAll().ok());
      }
      std::vector<EngineCheckpoint> images = first.CaptureCheckpoints();
      ASSERT_EQ(images.size(), static_cast<size_t>(shards));

      shard::ShardedEngine second(options);
      SeqSink suffix;
      second.AddSink(&suffix);
      for (const NamedQuery& query : fleet) {
        ASSERT_TRUE(second.RegisterText(query.text).ok());
      }
      ASSERT_TRUE(second.RestoreFrom(images).ok());
      for (size_t e = cut; e < events.size(); ++e) {
        ASSERT_TRUE(second.Ingest(events[e].graph, T(events[e].minute)).ok());
        ASSERT_TRUE(second.PumpAll().ok());
      }
      ASSERT_TRUE(second.Finish().ok());

      std::vector<Emission> combined = prefix.emissions();
      combined.insert(combined.end(), suffix.emissions().begin(),
                      suffix.emissions().end());
      ExpectSequencesIdentical(expected, combined, "restored run");
    }
  }
}

}  // namespace
}  // namespace seraph
