// Fault-tolerant ingestion and delivery: the full queue → driver →
// engine → sink loop under injected transport and sink faults.
//
// The contract asserted here (docs/INTERNALS.md, "Failure model"):
//  * zero element loss — every produced element reaches the engine
//    exactly once, no matter how many pumps fail in between;
//  * result equivalence — a faulty run emits the same per-query results
//    as a fault-free run over the same events;
//  * sink isolation — a permanently failing sink is quarantined after N
//    consecutive failures without affecting other sinks or evaluation,
//    and its rejected results land in the dead-letter queue;
//  * observability — failures, retries, and dead-letter traffic are
//    visible in the engine's metrics registry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>
#include <vector>

#include "common/clock.h"
#include "common/fault.h"
#include "fault_doubles.h"
#include "graph/graph_builder.h"
#include "io/json.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "seraph/sinks.h"
#include "seraph/stream_driver.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id) {
  return GraphBuilder().Node(id, {"X"}, {{"id", Value::Int(id)}}).Build();
}

constexpr char kCountQuery[] = R"(
  REGISTER QUERY q STARTING AT '1970-01-01T00:05'
  { MATCH (n:X) WITHIN PT30M EMIT n.id SNAPSHOT EVERY PT5M })";

// Every fault-injection test starts and ends with a clean global
// injector so tests cannot leak armed points into each other.
class FaultToleranceTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// FaultInjector / RetryPolicy primitives
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, InjectorScheduleFailsExactHits) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmSchedule("p", {2, 4});
  EXPECT_TRUE(fi.Fire("p").ok());
  EXPECT_FALSE(fi.Fire("p").ok());
  EXPECT_TRUE(fi.Fire("p").ok());
  Status s = fi.Fire("p");
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(s.IsTransient());
  EXPECT_TRUE(fi.Fire("p").ok());
  EXPECT_EQ(fi.hits("p"), 5);
  EXPECT_EQ(fi.failures("p"), 2);
  // Unarmed points never fail and are not counted as armed hits.
  EXPECT_TRUE(fi.Fire("other").ok());
}

TEST_F(FaultToleranceTest, InjectorArmNextRecovers) {
  FaultInjector& fi = FaultInjector::Global();
  fi.ArmNext("p", 2);
  EXPECT_FALSE(fi.Fire("p").ok());
  EXPECT_FALSE(fi.Fire("p").ok());
  EXPECT_TRUE(fi.Fire("p").ok());
}

TEST_F(FaultToleranceTest, InjectorProbabilityIsSeedDeterministic) {
  FaultInjector& fi = FaultInjector::Global();
  auto run = [&fi](uint64_t seed) {
    fi.Reset();
    fi.Seed(seed);
    fi.ArmProbability("p", 0.5);
    std::string outcomes;
    for (int i = 0; i < 64; ++i) outcomes += fi.Fire("p").ok() ? '.' : 'x';
    return outcomes;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // 2^-64 false-failure chance; fine.
}

TEST_F(FaultToleranceTest, RetryPolicyDeterministicBackoff) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_millis = 10;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_millis = 50;
  EXPECT_EQ(policy.DelayMillisFor(1), 10);
  EXPECT_EQ(policy.DelayMillisFor(2), 20);
  EXPECT_EQ(policy.DelayMillisFor(3), 40);
  EXPECT_EQ(policy.DelayMillisFor(4), 50);  // Capped.
  EXPECT_EQ(policy.DelayMillisFor(100), 50);

  EXPECT_TRUE(policy.ShouldRetry(Status::Unavailable("x"), 1));
  EXPECT_TRUE(policy.ShouldRetry(Status::Unavailable("x"), 4));
  EXPECT_FALSE(policy.ShouldRetry(Status::Unavailable("x"), 5));
  // Permanent errors are never retried.
  EXPECT_FALSE(policy.ShouldRetry(Status::EvaluationError("x"), 1));
  EXPECT_FALSE(RetryPolicy::None().ShouldRetry(Status::Unavailable("x"), 1));
}

// ---------------------------------------------------------------------------
// Sink failure reporting
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, StreamSinksReportFailedStreams) {
  TimeAnnotatedTable result;
  result.window = TimeInterval{T(0), T(5)};
  std::ostringstream os;
  os.setstate(std::ios::badbit);
  PrintingSink printing(&os, {}, /*include_empty=*/true);
  CsvSink csv(&os, {});
  JsonLinesSink json(&os);
  EXPECT_EQ(printing.OnResult("q", T(5), result).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(csv.OnResult("q", T(5), result).code(), StatusCode::kUnavailable);
  EXPECT_EQ(json.OnResult("q", T(5), result).code(),
            StatusCode::kUnavailable);
  // A recovered stream accepts the next delivery — including the CSV
  // header, which must not have been latched by the failed attempt.
  os.clear();
  EXPECT_TRUE(csv.OnResult("q", T(5), result).ok());
  EXPECT_EQ(os.str().find("query,evaluation_time"), 0u);
}

TEST_F(FaultToleranceTest, RetryingSinkRetriesTransientFailures) {
  TimeAnnotatedTable result;
  result.window = TimeInterval{T(0), T(5)};
  RetryPolicy policy;
  policy.max_attempts = 3;
  {
    // Fails delivery #1 only: one retry succeeds.
    FailNthSink flaky({1}, Status::Unavailable("hiccup"));
    RetryingSink retrying(&flaky, policy);
    EXPECT_TRUE(retrying.OnResult("q", T(5), result).ok());
    EXPECT_EQ(retrying.retries(), 1);
    EXPECT_EQ(flaky.calls(), 2);
    EXPECT_GT(retrying.backoff_millis_total(), 0);
  }
  {
    // Permanently broken consumer: no retries, error surfaces.
    FailNthSink broken = FailNthSink::AlwaysFailingFrom(
        1, Status::EvaluationError("schema mismatch"));
    RetryingSink retrying(&broken, policy);
    EXPECT_EQ(retrying.OnResult("q", T(5), result).code(),
              StatusCode::kEvaluationError);
    EXPECT_EQ(retrying.retries(), 0);
    EXPECT_EQ(broken.calls(), 1);
  }
}

// ---------------------------------------------------------------------------
// Engine-level sink isolation
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, EngineRetriesTransientSinkFailures) {
  DeadLetterQueue dlq;
  EngineOptions options;
  options.dead_letter = &dlq;
  ContinuousEngine engine(options);
  CollectingSink collector;
  // Fail every 2nd delivery transiently; the engine's per-sink retry
  // absorbs every failure.
  FlakySink flaky(&collector, 2);
  SinkPolicy policy;
  policy.retry.max_attempts = 3;
  engine.AddSink(&flaky, "flaky", policy);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());  // Evaluations at 5/10/15/20.
  EXPECT_EQ(collector.ResultsFor("q").size(), 4u);
  EXPECT_TRUE(dlq.empty());
  EXPECT_FALSE(engine.SinkQuarantined("flaky"));
  EXPECT_GT(
      engine.metrics().FindCounter("seraph_sink_retries_total",
                                   {{"sink", "flaky"}})->value(),
      0);
  EXPECT_EQ(engine.metrics().FindCounter("seraph_sink_failures_total",
                                         {{"sink", "flaky"}})->value(),
            0);
}

TEST_F(FaultToleranceTest, PermanentlyFailingSinkIsQuarantinedAndIsolated) {
  DeadLetterQueue dlq;
  EngineOptions options;
  options.dead_letter = &dlq;
  ContinuousEngine engine(options);
  CollectingSink healthy;
  FailNthSink broken = FailNthSink::AlwaysFailingFrom(
      1, Status::EvaluationError("consumer schema mismatch"));
  SinkPolicy policy;
  policy.retry.max_attempts = 2;  // Permanent errors skip retry anyway.
  policy.quarantine_after = 3;
  engine.AddSink(&healthy, "healthy", SinkPolicy{});
  engine.AddSink(&broken, "broken", policy);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(1)).ok());
  // 6 evaluations (5..30): the broken sink fails 3 and is quarantined;
  // evaluation and the healthy sink never notice.
  ASSERT_TRUE(engine.AdvanceTo(T(30)).ok());
  EXPECT_EQ(healthy.ResultsFor("q").size(), 6u);
  EXPECT_TRUE(engine.SinkQuarantined("broken"));
  EXPECT_FALSE(engine.SinkQuarantined("healthy"));
  EXPECT_EQ(broken.calls(), 3);  // Stopped receiving after quarantine.
  // The three rejected results were captured, not lost.
  EXPECT_EQ(dlq.sink_results(), 3);
  EXPECT_EQ(dlq.entries()[0].source, "broken");
  EXPECT_EQ(dlq.entries()[0].query, "q");
  EXPECT_EQ(dlq.entries()[0].error.code(), StatusCode::kEvaluationError);
  // Metrics: failures counted, quarantine gauge raised.
  EXPECT_EQ(engine.metrics().FindCounter("seraph_sink_failures_total",
                                         {{"sink", "broken"}})->value(),
            3);
  EXPECT_EQ(engine.metrics().FindGauge("seraph_sink_quarantined",
                                       {{"sink", "broken"}})->value(),
            1);
  EXPECT_EQ(engine.metrics().FindGauge("seraph_sink_quarantined",
                                       {{"sink", "healthy"}})->value(),
            0);
  // Dead-letter entries serialize to JSON lines.
  std::ostringstream os;
  ASSERT_TRUE(dlq.WriteJsonLines(&os).ok());
  EXPECT_NE(os.str().find("\"kind\":\"sink_result\""), std::string::npos);
  EXPECT_NE(os.str().find("\"source\":\"broken\""), std::string::npos);
  // Operator intervention: revival clears the quarantine.
  ASSERT_TRUE(engine.ReviveSink("broken").ok());
  EXPECT_FALSE(engine.SinkQuarantined("broken"));
  EXPECT_FALSE(engine.ReviveSink("nope").ok());
}

// ---------------------------------------------------------------------------
// Driver recovery: loss-free delivery under transport faults
// ---------------------------------------------------------------------------

// Produces `count` events at minutes 1, 3, 5, ... into the queue.
void ProduceEvents(EventQueue* queue, int count) {
  for (int i = 0; i < count; ++i) {
    ASSERT_TRUE(queue->Produce(Item(i + 1), T(1 + 2 * i)).ok());
  }
}

// Runs the same query over the same events with no faults and returns
// the collected results (the oracle for result-equivalence checks).
TimeVaryingTable FaultFreeOracle(int count) {
  EventQueue queue;
  ProduceEvents(&queue, count);
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  EXPECT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver driver(&queue, &engine, {});
  auto delivered = driver.PumpAll();
  EXPECT_TRUE(delivered.ok());
  EXPECT_TRUE(driver.Finish().ok());
  return sink.ResultsFor("q");
}

void ExpectSameResults(const TimeVaryingTable& actual,
                       const TimeVaryingTable& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual.entries()[i].window, expected.entries()[i].window);
    EXPECT_EQ(io::ToJson(actual.entries()[i].table.Canonicalized()),
              io::ToJson(expected.entries()[i].table.Canonicalized()))
        << "result " << i << " diverged";
  }
}

TEST_F(FaultToleranceTest, DeliveryFaultsLoseNothingAndMatchFaultFreeRun) {
  const int kEvents = 12;
  TimeVaryingTable expected = FaultFreeOracle(kEvents);

  EventQueue queue;
  ProduceEvents(&queue, kEvents);
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.poll_batch = 4;
  options.delivery_retry.max_attempts = 2;
  StreamDriver driver(&queue, &engine, options);

  // Fail deliveries #2, #3 (same element: retry then pump failure), and
  // #7. Attempt #2 retries in-pump into attempt #3, which fails too →
  // the pump errors, re-seeks, and the next pump redelivers.
  FaultInjector::Global().ArmSchedule("driver.deliver", {2, 3, 7});
  int failed_pumps = 0;
  for (int i = 0; i < 10; ++i) {
    auto pumped = driver.PumpAll();
    if (pumped.ok()) break;
    EXPECT_TRUE(pumped.status().IsTransient());
    ++failed_pumps;
  }
  EXPECT_EQ(failed_pumps, 1);  // Hit #7 is absorbed by the in-pump retry.
  ASSERT_TRUE(driver.Finish().ok());

  // Zero loss, exactly once: every element is in the engine's stream.
  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
  EXPECT_EQ(driver.delivered_total(), kEvents);
  EXPECT_EQ(driver.dead_lettered(), 0);
  EXPECT_GT(driver.retries(), 0);
  EXPECT_EQ(driver.reseeks(), 1);
  ExpectSameResults(sink.ResultsFor("q"), expected);
}

TEST_F(FaultToleranceTest, PollFaultsAreRetriableWithoutLoss) {
  const int kEvents = 10;
  TimeVaryingTable expected = FaultFreeOracle(kEvents);

  FlakyQueue queue(/*fail_every=*/2);  // Every 2nd poll times out.
  ProduceEvents(&queue, kEvents);
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.poll_batch = 3;
  StreamDriver driver(&queue, &engine, options);
  for (int i = 0; i < 20; ++i) {
    auto pumped = driver.PumpAll();
    if (pumped.ok()) break;
    EXPECT_TRUE(pumped.status().IsTransient());
  }
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
  EXPECT_GT(queue.failures(), 0);
  ExpectSameResults(sink.ResultsFor("q"), expected);
}

TEST_F(FaultToleranceTest, ReorderedReleasesSurviveDeliveryFailure) {
  // Satellite: buffered-but-unreleased elements must survive a failed
  // Deliver and be retried on the next pump.
  EventQueue queue;
  ASSERT_TRUE(queue.Produce(Item(1), T(10)).ok());
  ASSERT_TRUE(queue.Produce(Item(2), T(12)).ok());
  ASSERT_TRUE(queue.Produce(Item(3), T(20)).ok());
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.allowed_lateness = Duration::FromMinutes(5);
  options.delivery_retry = RetryPolicy::None();
  StreamDriver driver(&queue, &engine, options);

  // Watermark after the third element is 15: elements @10 and @12 are
  // released together; delivery of the *first* release fails once.
  FaultInjector::Global().ArmSchedule("driver.deliver", {1});
  auto pumped = driver.PumpAll();
  ASSERT_FALSE(pumped.ok());
  // Both released elements are parked, neither lost nor delivered.
  EXPECT_EQ(driver.pending(), 2u);
  EXPECT_EQ(engine.stream().size(), 0u);

  // Next pump retries the parked releases first.
  pumped = driver.PumpAll();
  ASSERT_TRUE(pumped.ok()) << pumped.status();
  EXPECT_EQ(*pumped, 2);
  EXPECT_EQ(driver.pending(), 0u);
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(engine.stream().size(), 3u);
  // Stream order was preserved through the failure.
  EXPECT_EQ(engine.stream().at(0).timestamp, T(10));
  EXPECT_EQ(engine.stream().at(1).timestamp, T(12));
  EXPECT_EQ(engine.stream().at(2).timestamp, T(20));
  EXPECT_EQ(driver.dropped(), 0);
}

TEST_F(FaultToleranceTest, PoisonElementIsDeadLetteredNotWedged) {
  const int kEvents = 6;
  EventQueue queue;
  ProduceEvents(&queue, kEvents);
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  DeadLetterQueue dlq;
  StreamDriver::Options options;
  options.delivery_retry = RetryPolicy::None();  // 1 try per pump.
  options.element_error_budget = 2;              // 2 failed pumps → poison.
  options.dead_letter = &dlq;
  StreamDriver driver(&queue, &engine, options);

  // Element #3 fails twice (hit 3 on the first pump, hit 4 when the
  // second pump redelivers it): the first failure aborts the pump, the
  // second exhausts the error budget and routes the element to the
  // dead-letter queue; the pump then continues with #4..#6.
  FaultInjector::Global().ArmSchedule("driver.deliver", {3, 4});
  auto pumped = driver.PumpAll();
  ASSERT_FALSE(pumped.ok());
  EXPECT_EQ(driver.delivered_total(), 2);
  pumped = driver.PumpAll();
  ASSERT_TRUE(pumped.ok()) << pumped.status();
  ASSERT_TRUE(driver.Finish().ok());

  // The poison element was quarantined with its status and attempt
  // count; everything else was delivered.
  EXPECT_EQ(driver.dead_lettered(), 1);
  EXPECT_EQ(dlq.elements(), 1);
  EXPECT_EQ(dlq.entries()[0].timestamp, T(5));  // Element #3 is at minute 5.
  EXPECT_EQ(dlq.entries()[0].attempts, 2);
  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents - 1));
  std::ostringstream os;
  ASSERT_TRUE(dlq.WriteJsonLines(&os).ok());
  EXPECT_NE(os.str().find("\"kind\":\"stream_element\""), std::string::npos);
  EXPECT_NE(os.str().find("\"element\":{\"nodes\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chaos: probabilistic faults on every edge of the loop at once
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, ChaosRunDeliversExactlyOnceAndMatchesOracle) {
  const int kEvents = 40;
  TimeVaryingTable expected = FaultFreeOracle(kEvents);

  uint64_t seed = 42;
  if (const char* env = std::getenv("SERAPH_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  FaultInjector& fi = FaultInjector::Global();
  fi.Seed(seed);
  fi.ArmProbability("driver.deliver", 0.25);
  fi.ArmProbability("queue.poll", 0.2);

  EventQueue queue;
  ProduceEvents(&queue, kEvents);
  DeadLetterQueue dlq;
  EngineOptions engine_options;
  engine_options.dead_letter = &dlq;
  ContinuousEngine engine(engine_options);
  CollectingSink collector;
  FlakySink flaky(&collector, /*fail_every=*/3);
  SinkPolicy sink_policy;
  sink_policy.retry.max_attempts = 4;
  engine.AddSink(&flaky, "chaos-sink", sink_policy);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());

  StreamDriver::Options options;
  options.poll_batch = 5;
  options.delivery_retry.max_attempts = 3;
  options.element_error_budget = 1000;  // Chaos is transient; no poison.
  options.dead_letter = &dlq;
  StreamDriver driver(&queue, &engine, options);

  // Pump until the whole queue made it through (bounded: each iteration
  // makes progress or fails a fault that cannot repeat forever at p<1).
  bool done = false;
  for (int i = 0; i < 10'000 && !done; ++i) {
    auto pumped = driver.PumpAll();
    if (!pumped.ok()) {
      EXPECT_TRUE(pumped.status().IsTransient()) << pumped.status();
      continue;
    }
    done = engine.stream().size() == static_cast<size_t>(kEvents);
  }
  ASSERT_TRUE(done) << "chaos run did not converge";
  for (int i = 0; i < 1000; ++i) {
    if (driver.Finish().ok()) break;
  }

  // Exactly once into the engine, same results as the oracle, nothing
  // dead-lettered (all faults transient), sink retried but never lost a
  // delivery.
  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
  EXPECT_EQ(driver.delivered_total(), kEvents);
  EXPECT_EQ(driver.dead_lettered(), 0);
  EXPECT_EQ(dlq.size(), 0u);
  ExpectSameResults(collector.ResultsFor("q"), expected);
  EXPECT_FALSE(engine.SinkQuarantined("chaos-sink"));
  EXPECT_GT(driver.retries() + driver.reseeks() + flaky.failures(), 0);
}

// The same chaos scenario with a parallel evaluation fleet: 4 worker
// threads and extra query copies must not change the delivered results,
// and the thread-safety of the injector/metrics/trace paths gets
// exercised under real contention (this test is part of the TSan CI job).
TEST_F(FaultToleranceTest, ChaosRunParallelMatchesOracle) {
  const int kEvents = 40;
  TimeVaryingTable expected = FaultFreeOracle(kEvents);

  FaultInjector& fi = FaultInjector::Global();
  fi.Seed(42);
  fi.ArmProbability("driver.deliver", 0.25);
  fi.ArmProbability("queue.poll", 0.2);

  EventQueue queue;
  ProduceEvents(&queue, kEvents);
  DeadLetterQueue dlq;
  EngineOptions engine_options;
  engine_options.dead_letter = &dlq;
  engine_options.eval_threads = 4;
  ContinuousEngine engine(engine_options);
  CollectingSink collector;
  FlakySink flaky(&collector, /*fail_every=*/3);
  SinkPolicy sink_policy;
  sink_policy.retry.max_attempts = 4;
  engine.AddSink(&flaky, "chaos-sink", sink_policy);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  // Sibling copies of the same query (same ET grid) so every instant is
  // a batch of 4 concurrent evaluations.
  for (int i = 0; i < 3; ++i) {
    std::string copy(kCountQuery);
    size_t pos = copy.find("QUERY q");
    ASSERT_NE(pos, std::string::npos);
    copy.replace(pos, 7, "QUERY q" + std::to_string(i + 1));
    ASSERT_TRUE(engine.RegisterText(copy).ok());
  }

  StreamDriver::Options options;
  options.poll_batch = 5;
  options.delivery_retry.max_attempts = 3;
  options.element_error_budget = 1000;
  options.dead_letter = &dlq;
  StreamDriver driver(&queue, &engine, options);

  bool done = false;
  for (int i = 0; i < 10'000 && !done; ++i) {
    auto pumped = driver.PumpAll();
    if (!pumped.ok()) {
      EXPECT_TRUE(pumped.status().IsTransient()) << pumped.status();
      continue;
    }
    done = engine.stream().size() == static_cast<size_t>(kEvents);
  }
  ASSERT_TRUE(done) << "chaos run did not converge";
  for (int i = 0; i < 1000; ++i) {
    if (driver.Finish().ok()) break;
  }

  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
  EXPECT_EQ(dlq.evaluation_failures(), 0);
  // Every copy saw the exact oracle results, in order.
  ExpectSameResults(collector.ResultsFor("q"), expected);
  for (int i = 0; i < 3; ++i) {
    ExpectSameResults(collector.ResultsFor("q" + std::to_string(i + 1)),
                      expected);
  }
  EXPECT_FALSE(engine.SinkQuarantined("chaos-sink"));
}

// ---------------------------------------------------------------------------
// Finish() edge cases (satellite)
// ---------------------------------------------------------------------------

TEST_F(FaultToleranceTest, FinishWithNoDeliveriesIsANoOp) {
  EventQueue queue;
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver driver(&queue, &engine, {});
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(engine.evaluations_run(), 0);
  EXPECT_EQ(driver.delivered_total(), 0);
}

TEST_F(FaultToleranceTest, FinishAfterMidPumpErrorDrainsPending) {
  EventQueue queue;
  ASSERT_TRUE(queue.Produce(Item(1), T(10)).ok());
  ASSERT_TRUE(queue.Produce(Item(2), T(20)).ok());
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.allowed_lateness = Duration::FromMinutes(5);
  options.delivery_retry = RetryPolicy::None();
  StreamDriver driver(&queue, &engine, options);
  // The pump offers both elements and releases @10 (watermark 15); its
  // delivery fails → parked.
  FaultInjector::Global().ArmSchedule("driver.deliver", {1});
  ASSERT_FALSE(driver.PumpAll().ok());
  EXPECT_EQ(driver.pending(), 1u);
  // Finish drains the parked element, flushes the buffer, and runs the
  // final evaluations — nothing lost despite the failed pump.
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(engine.stream().size(), 2u);
  EXPECT_GT(engine.evaluations_run(), 0);
}

TEST_F(FaultToleranceTest, DoubleFinishIsIdempotent) {
  EventQueue queue;
  ASSERT_TRUE(queue.Produce(Item(1), T(10)).ok());
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.allowed_lateness = Duration::FromMinutes(5);
  StreamDriver driver(&queue, &engine, options);
  ASSERT_TRUE(driver.PumpAll().ok());
  ASSERT_TRUE(driver.Finish().ok());
  const size_t results = sink.ResultsFor("q").size();
  const int64_t evaluations = engine.evaluations_run();
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(sink.ResultsFor("q").size(), results);
  EXPECT_EQ(engine.evaluations_run(), evaluations);
}

TEST_F(FaultToleranceTest, LateFloodIsCountedNotDelivered) {
  UnorderedQueue queue;
  queue.Add(Item(1), T(60));
  // A flood of elements far older than the watermark (60 − 5 = 55).
  for (int i = 0; i < 8; ++i) {
    queue.Add(Item(100 + i), T(10 + i));
  }
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.allowed_lateness = Duration::FromMinutes(5);
  StreamDriver driver(&queue, &engine, options);
  ASSERT_TRUE(driver.PumpAll().ok());
  EXPECT_EQ(driver.dropped(), 8);
  ASSERT_TRUE(driver.Finish().ok());
  // Only the on-time element reached the engine; drop accounting is
  // stable across Finish.
  EXPECT_EQ(engine.stream().size(), 1u);
  EXPECT_EQ(driver.dropped(), 8);
}

// ---------------------------------------------------------------------------
// Overload chaos: bounded ingest with backpressure under injected faults
// (docs/INTERNALS.md, "Overload & backpressure")
// ---------------------------------------------------------------------------

// Sustained over-capacity ingest into a 5-slot queue with produce, poll,
// and delivery faults armed. The producer relieves backpressure by
// pumping the consumer whenever a produce is refused (the same loop
// seraph_run and latency_harness use). The contract, per policy:
//  * block / reject — nothing is lost: the engine receives every element
//    exactly once and the results match the unbounded fault-free oracle
//    bit-identically;
//  * shed_oldest — delivered ∪ shed partitions the input exactly; every
//    eviction is accounted and surfaced through the shed callback.
void OverloadChaosRun(OverflowPolicy policy, uint64_t seed) {
  SCOPED_TRACE("policy=" + std::string(OverflowPolicyName(policy)) +
               " seed=" + std::to_string(seed));
  const int kEvents = 40;
  FaultInjector& fi = FaultInjector::Global();
  fi.Reset();  // The oracle below must run fault-free.
  TimeVaryingTable expected = FaultFreeOracle(kEvents);

  fi.Seed(seed);
  fi.ArmProbability("queue.produce", 0.2);
  fi.ArmProbability("queue.poll", 0.15);
  fi.ArmProbability("driver.deliver", 0.2);

  EventQueue::Options queue_options;
  queue_options.capacity = 5;
  queue_options.overflow_policy = policy;
  EventQueue queue(queue_options);
  ManualClock clock(0);
  queue.SetClock(&clock);  // `block` waits in virtual time: never hangs.
  std::vector<Timestamp> shed;
  queue.SetShedCallback(
      [&](const StreamElement& e) { shed.push_back(e.timestamp); });

  DeadLetterQueue dlq;
  EngineOptions engine_options;
  engine_options.dead_letter = &dlq;
  ContinuousEngine engine(engine_options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver::Options options;
  options.poll_batch = 3;
  options.delivery_retry.max_attempts = 3;
  options.element_error_budget = 1000;  // Chaos is transient; no poison.
  options.dead_letter = &dlq;
  StreamDriver driver(&queue, &engine, options);

  // Over-capacity production with the backpressure loop.
  for (int i = 0; i < kEvents; ++i) {
    bool produced = false;
    for (int attempt = 0; attempt < 10'000 && !produced; ++attempt) {
      Status s = queue.Produce(Item(i + 1), T(1 + 2 * i));
      if (s.ok()) {
        produced = true;
        break;
      }
      ASSERT_EQ(s.code(), StatusCode::kUnavailable) << s.ToString();
      auto pumped = driver.PumpAll();
      if (!pumped.ok()) {
        EXPECT_TRUE(pumped.status().IsTransient());
      }
    }
    ASSERT_TRUE(produced) << "event " << i << " never admitted";
  }
  // Drain the tail through the remaining faults.
  bool done = false;
  for (int i = 0; i < 10'000 && !done; ++i) {
    auto pumped = driver.PumpAll();
    if (!pumped.ok()) {
      EXPECT_TRUE(pumped.status().IsTransient());
      continue;
    }
    done = engine.stream().size() + shed.size() ==
           static_cast<size_t>(kEvents);
  }
  ASSERT_TRUE(done) << "overload chaos run did not converge";
  for (int i = 0; i < 1000; ++i) {
    if (driver.Finish().ok()) break;
  }

  // Exact accounting: the shed callback saw precisely shed_total
  // evictions, and delivered ∪ shed partitions the input.
  EXPECT_EQ(static_cast<int64_t>(shed.size()), queue.shed_total());
  ASSERT_EQ(engine.stream().size() + shed.size(),
            static_cast<size_t>(kEvents));
  std::multiset<int64_t> seen;
  for (size_t i = 0; i < engine.stream().size(); ++i) {
    seen.insert(engine.stream().at(i).timestamp.millis());
  }
  for (const Timestamp& t : shed) seen.insert(t.millis());
  std::multiset<int64_t> produced_all;
  for (int i = 0; i < kEvents; ++i) produced_all.insert(T(1 + 2 * i).millis());
  EXPECT_EQ(seen, produced_all);

  if (policy == OverflowPolicy::kShedOldest) {
    EXPECT_EQ(queue.rejected_total(), 0);
  } else {
    // Loss-free policies: delivered results are bit-identical to the
    // unbounded fault-free oracle.
    EXPECT_TRUE(shed.empty());
    EXPECT_EQ(queue.shed_total(), 0);
    EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
    EXPECT_EQ(driver.delivered_total(), kEvents);
    ExpectSameResults(sink.ResultsFor("q"), expected);
  }
  // Memory stayed bounded: the queue never retained more than capacity.
  EXPECT_LE(queue.depth(), queue_options.capacity);
}

// SERAPH_FAULT_SEED pins the run to one seed (same override as the
// delivery chaos tests); otherwise each policy runs seeds 1..3.
std::vector<uint64_t> OverloadSeeds() {
  if (const char* env = std::getenv("SERAPH_FAULT_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3};
}

TEST_F(FaultToleranceTest, OverloadChaosBlockPolicyMatchesOracle) {
  for (uint64_t seed : OverloadSeeds()) {
    OverloadChaosRun(OverflowPolicy::kBlock, seed);
  }
}

TEST_F(FaultToleranceTest, OverloadChaosRejectPolicyMatchesOracle) {
  for (uint64_t seed : OverloadSeeds()) {
    OverloadChaosRun(OverflowPolicy::kReject, seed);
  }
}

TEST_F(FaultToleranceTest, OverloadChaosShedOldestPartitionsInput) {
  for (uint64_t seed : OverloadSeeds()) {
    OverloadChaosRun(OverflowPolicy::kShedOldest, seed);
  }
}

// ---------------------------------------------------------------------------
// Evaluation deadlines through the isolation path
// ---------------------------------------------------------------------------

constexpr char kSlowQuery[] = R"(
  REGISTER QUERY slow STARTING AT '1970-01-01T00:05'
  { MATCH (n:X) WITHIN PT30M EMIT n.id SNAPSHOT EVERY PT5M })";

// A deadline overrun is not transient: it burns the query's error budget
// and disables it through the same isolation path as evaluation errors,
// while the rest of the fleet's output is unchanged. The overrun is
// injected via the "eval.deadline" fault point (armed only when a
// deadline is configured), re-coded by the engine as kDeadlineExceeded.
TEST_F(FaultToleranceTest, EvalDeadlineDisablesOnlyTheOffendingQuery) {
  const int kEvents = 12;
  TimeVaryingTable expected = FaultFreeOracle(kEvents);

  EngineOptions engine_options;
  engine_options.eval_deadline_millis = 25;
  engine_options.query_error_budget = 2;
  DeadLetterQueue dlq;
  engine_options.dead_letter = &dlq;
  ContinuousEngine engine(engine_options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());  // "q", healthy.
  ASSERT_TRUE(engine.RegisterText(kSlowQuery).ok());   // The victim.
  // Per evaluation instant the batch runs q then slow; fire on hits 2
  // and 4 — slow's first two evaluations — to exhaust its budget.
  FaultInjector::Global().ArmSchedule("eval.deadline", {2, 4});

  EventQueue queue;
  ProduceEvents(&queue, kEvents);
  StreamDriver driver(&queue, &engine, {});
  ASSERT_TRUE(driver.PumpAll().ok());
  ASSERT_TRUE(driver.Finish().ok());

  // The offender is disabled with the deadline recorded...
  EXPECT_TRUE(engine.QueryDisabled("slow"));
  auto stats = engine.StatsFor("slow");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->eval_failures, 2);
  EXPECT_EQ(stats->last_error.code(), StatusCode::kDeadlineExceeded);
  EXPECT_GT(dlq.size(), 0u);  // The failed instants are dead-lettered.
  // ...and the healthy query's output is bit-identical to a clean run.
  EXPECT_FALSE(engine.QueryDisabled("q"));
  ExpectSameResults(sink.ResultsFor("q"), expected);

  // Revive: the deadline victim rejoins the fleet like any other
  // budget-disabled query.
  ASSERT_TRUE(engine.ReviveQuery("slow").ok());
  EXPECT_FALSE(engine.QueryDisabled("slow"));
}

}  // namespace
}  // namespace seraph
