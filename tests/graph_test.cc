#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/property_graph.h"

namespace seraph {
namespace {

PropertyGraph SmallGraph() {
  return GraphBuilder()
      .Node(1, {"Station"}, {{"id", Value::Int(1)}})
      .Node(2, {"Station"}, {{"id", Value::Int(2)}})
      .Node(5, {"Bike", "E-Bike"}, {{"id", Value::Int(5)}})
      .Rel(1, 5, 1, "rentedAt", {{"user_id", Value::Int(1234)}})
      .Rel(2, 5, 2, "returnedAt", {{"user_id", Value::Int(1234)}})
      .Build();
}

TEST(PropertyGraphTest, BasicAccessors) {
  PropertyGraph g = SmallGraph();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_relationships(), 2u);
  ASSERT_NE(g.node(NodeId{5}), nullptr);
  EXPECT_TRUE(g.node(NodeId{5})->labels.contains("E-Bike"));
  ASSERT_NE(g.relationship(RelId{1}), nullptr);
  EXPECT_EQ(g.relationship(RelId{1})->type, "rentedAt");
  EXPECT_EQ(g.relationship(RelId{1})->src, (NodeId{5}));
  EXPECT_EQ(g.relationship(RelId{1})->trg, (NodeId{1}));
  EXPECT_EQ(g.node(NodeId{99}), nullptr);
}

TEST(PropertyGraphTest, AddNodeRejectsDuplicates) {
  PropertyGraph g;
  EXPECT_TRUE(g.AddNode(NodeId{1}, NodeData{}).ok());
  Status s = g.AddNode(NodeId{1}, NodeData{});
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(PropertyGraphTest, AddRelationshipRequiresEndpoints) {
  PropertyGraph g;
  ASSERT_TRUE(g.AddNode(NodeId{1}, NodeData{}).ok());
  RelData rel;
  rel.type = "KNOWS";
  rel.src = NodeId{1};
  rel.trg = NodeId{2};
  EXPECT_EQ(g.AddRelationship(RelId{1}, rel).code(),
            StatusCode::kInvalidArgument);
}

TEST(PropertyGraphTest, AdjacencyIndexes) {
  PropertyGraph g = SmallGraph();
  EXPECT_EQ(g.OutRelationships(NodeId{5}).size(), 2u);
  EXPECT_EQ(g.InRelationships(NodeId{1}).size(), 1u);
  EXPECT_EQ(g.InRelationships(NodeId{2}).size(), 1u);
  EXPECT_TRUE(g.OutRelationships(NodeId{1}).empty());
  EXPECT_TRUE(g.OutRelationships(NodeId{404}).empty());
}

TEST(PropertyGraphTest, LabelAndTypeIndexes) {
  PropertyGraph g = SmallGraph();
  EXPECT_EQ(g.NodesWithLabel("Station").size(), 2u);
  EXPECT_EQ(g.NodesWithLabel("Bike").size(), 1u);
  EXPECT_EQ(g.NodesWithLabel("E-Bike").size(), 1u);
  EXPECT_TRUE(g.NodesWithLabel("Nope").empty());
  EXPECT_EQ(g.RelationshipsWithType("rentedAt").size(), 1u);
  EXPECT_EQ(g.RelationshipsWithType("returnedAt").size(), 1u);
}

TEST(PropertyGraphTest, MergeNodeUnionsLabelsAndOverwritesProps) {
  PropertyGraph g;
  NodeData a;
  a.labels = {"Bike"};
  a.properties = {{"id", Value::Int(5)}, {"color", Value::String("red")}};
  g.MergeNode(NodeId{5}, a);
  NodeData b;
  b.labels = {"E-Bike"};
  b.properties = {{"color", Value::String("blue")}};
  g.MergeNode(NodeId{5}, b);
  const NodeData* merged = g.node(NodeId{5});
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->labels, (std::set<std::string>{"Bike", "E-Bike"}));
  EXPECT_EQ(merged->properties.at("color"), Value::String("blue"));
  EXPECT_EQ(merged->properties.at("id"), Value::Int(5));
  // Label index reflects the merged label.
  EXPECT_EQ(g.NodesWithLabel("E-Bike").size(), 1u);
}

TEST(PropertyGraphTest, MergeRelationshipConflictDetected) {
  PropertyGraph g = SmallGraph();
  RelData conflicting;
  conflicting.type = "rentedAt";
  conflicting.src = NodeId{5};
  conflicting.trg = NodeId{2};  // Original r1 targets node 1.
  Status s = g.MergeRelationship(RelId{1}, conflicting);
  EXPECT_EQ(s.code(), StatusCode::kInconsistent);
}

TEST(PropertyGraphTest, RemoveNodeCascadesToRelationships) {
  PropertyGraph g = SmallGraph();
  g.RemoveNode(NodeId{5});
  EXPECT_EQ(g.num_nodes(), 2u);
  EXPECT_EQ(g.num_relationships(), 0u);
  EXPECT_TRUE(g.InRelationships(NodeId{1}).empty());
}

TEST(PropertyGraphTest, RemoveRelationshipUpdatesIndexes) {
  PropertyGraph g = SmallGraph();
  g.RemoveRelationship(RelId{1});
  EXPECT_EQ(g.num_relationships(), 1u);
  EXPECT_TRUE(g.RelationshipsWithType("rentedAt").empty());
  EXPECT_TRUE(g.InRelationships(NodeId{1}).empty());
  EXPECT_EQ(g.OutRelationships(NodeId{5}).size(), 1u);
}

TEST(PropertyGraphTest, SetNodeDataReplacesPayloadKeepsAdjacency) {
  PropertyGraph g = SmallGraph();
  NodeData replacement;
  replacement.labels = {"Scooter"};
  g.SetNodeData(NodeId{5}, replacement);
  EXPECT_TRUE(g.NodesWithLabel("Bike").empty());
  EXPECT_EQ(g.NodesWithLabel("Scooter").size(), 1u);
  EXPECT_EQ(g.OutRelationships(NodeId{5}).size(), 2u);
}

TEST(PropertyGraphTest, PropertyLookupReturnsNullWhenAbsent) {
  PropertyGraph g = SmallGraph();
  EXPECT_EQ(g.NodeProperty(NodeId{1}, "id"), Value::Int(1));
  EXPECT_TRUE(g.NodeProperty(NodeId{1}, "missing").is_null());
  EXPECT_TRUE(g.NodeProperty(NodeId{404}, "id").is_null());
  EXPECT_EQ(g.RelationshipProperty(RelId{1}, "user_id"), Value::Int(1234));
  EXPECT_TRUE(g.RelationshipProperty(RelId{404}, "user_id").is_null());
}

TEST(PropertyGraphTest, NodeIdsSorted) {
  PropertyGraph g = SmallGraph();
  std::vector<NodeId> ids = g.NodeIds();
  EXPECT_EQ(ids.size(), 3u);
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

}  // namespace
}  // namespace seraph
