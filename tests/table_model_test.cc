// Tests for Defs. 3.2 (records, bag tables), 5.6 (time-annotated tables),
// and 5.7 (time-varying tables).
#include <gtest/gtest.h>

#include "table/record.h"
#include "table/table.h"
#include "table/time_table.h"

namespace seraph {
namespace {

Record R(std::map<std::string, Value> fields) {
  return Record(std::move(fields));
}

TEST(RecordTest, DomainAndAccess) {
  Record r = R({{"a", Value::Int(1)}, {"b", Value::String("x")}});
  EXPECT_EQ(r.Domain(), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(*r.Find("a"), Value::Int(1));
  EXPECT_EQ(r.Find("c"), nullptr);
  EXPECT_TRUE(r.GetOrNull("c").is_null());
}

TEST(RecordTest, ExtendedMergesBindings) {
  Record u = R({{"a", Value::Int(1)}});
  Record v = R({{"b", Value::Int(2)}});
  Record uv = u.Extended(v);
  EXPECT_EQ(uv.Domain(), (std::set<std::string>{"a", "b"}));
  EXPECT_EQ(*uv.Find("a"), Value::Int(1));
  EXPECT_EQ(*uv.Find("b"), Value::Int(2));
}

TEST(RecordTest, EqualityAndHash) {
  Record a = R({{"x", Value::Int(1)}});
  Record b = R({{"x", Value::Int(1)}});
  Record c = R({{"x", Value::Int(2)}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_NE(a, c);
}

TEST(TableTest, UnitTableHasOneEmptyRecord) {
  Table t = Table::Unit();
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.rows()[0].empty());
  EXPECT_TRUE(t.fields().empty());
}

TEST(TableTest, BagSemanticsKeepDuplicates) {
  Table t({"a"});
  t.Append(R({{"a", Value::Int(1)}}));
  t.Append(R({{"a", Value::Int(1)}}));
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.Count(R({{"a", Value::Int(1)}})), 2u);
  EXPECT_EQ(t.Distinct().size(), 1u);
}

TEST(TableTest, BagDifferenceRespectsMultiplicity) {
  Table a({"x"});
  a.Append(R({{"x", Value::Int(1)}}));
  a.Append(R({{"x", Value::Int(1)}}));
  a.Append(R({{"x", Value::Int(2)}}));
  Table b({"x"});
  b.Append(R({{"x", Value::Int(1)}}));
  b.Append(R({{"x", Value::Int(3)}}));
  Table diff = Table::BagDifference(a, b);
  EXPECT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff.Count(R({{"x", Value::Int(1)}})), 1u);
  EXPECT_EQ(diff.Count(R({{"x", Value::Int(2)}})), 1u);
}

TEST(TableTest, BagDifferenceWithSelfIsEmpty) {
  Table a({"x"});
  a.Append(R({{"x", Value::Int(1)}}));
  a.Append(R({{"x", Value::Int(2)}}));
  EXPECT_TRUE(Table::BagDifference(a, a).empty());
}

TEST(TableTest, BagUnionConcatenates) {
  Table a({"x"});
  a.Append(R({{"x", Value::Int(1)}}));
  Table b({"x"});
  b.Append(R({{"x", Value::Int(1)}}));
  b.Append(R({{"x", Value::Int(2)}}));
  EXPECT_EQ(Table::BagUnion(a, b).size(), 3u);
}

TEST(TableTest, BagEqualityIsOrderInsensitive) {
  Table a({"x"});
  a.Append(R({{"x", Value::Int(1)}}));
  a.Append(R({{"x", Value::Int(2)}}));
  Table b({"x"});
  b.Append(R({{"x", Value::Int(2)}}));
  b.Append(R({{"x", Value::Int(1)}}));
  EXPECT_EQ(a, b);
  b.Append(R({{"x", Value::Int(2)}}));
  EXPECT_NE(a, b);
}

TEST(TableTest, ProjectKeepsRequestedFields) {
  Table t({"a", "b"});
  t.Append(R({{"a", Value::Int(1)}, {"b", Value::Int(2)}}));
  Table p = t.Project({"b"});
  EXPECT_EQ(p.fields(), (std::set<std::string>{"b"}));
  EXPECT_EQ(*p.rows()[0].Find("b"), Value::Int(2));
  EXPECT_EQ(p.rows()[0].Find("a"), nullptr);
}

TEST(TableTest, AsciiRendering) {
  Table t({"user", "hops"});
  t.Append(R({{"user", Value::Int(1234)},
              {"hops", Value::MakeList({Value::Int(2), Value::Int(3)})}}));
  std::string ascii = t.ToAsciiTable({"user", "hops"});
  EXPECT_NE(ascii.find("1234"), std::string::npos);
  EXPECT_NE(ascii.find("[2, 3]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Time-annotated and time-varying tables
// ---------------------------------------------------------------------------

TimeInterval Window(int64_t start_min, int64_t end_min) {
  return TimeInterval{
      Timestamp::FromMillis(start_min * 60'000),
      Timestamp::FromMillis(end_min * 60'000)};
}

TEST(TimeAnnotatedTableTest, WithAnnotationsAddsReservedColumns) {
  Table t({"a"});
  t.Append(R({{"a", Value::Int(7)}}));
  TimeAnnotatedTable annotated{t, Window(0, 60)};
  Table full = annotated.WithAnnotations();
  EXPECT_TRUE(full.fields().contains(kWinStartField));
  EXPECT_TRUE(full.fields().contains(kWinEndField));
  const Record& row = full.rows()[0];
  EXPECT_EQ(row.GetOrNull(kWinStartField),
            Value::DateTime(Timestamp::FromMillis(0)));
  EXPECT_EQ(row.GetOrNull(kWinEndField),
            Value::DateTime(Timestamp::FromMillis(3'600'000)));
}

TEST(TimeVaryingTableTest, AtSelectsEarliestCoveringWindow) {
  TimeVaryingTable psi;
  Table t1({"a"});
  t1.Append(R({{"a", Value::Int(1)}}));
  Table t2({"a"});
  t2.Append(R({{"a", Value::Int(2)}}));
  psi.Insert(TimeAnnotatedTable{t1, Window(0, 60)});
  psi.Insert(TimeAnnotatedTable{t2, Window(30, 90)});
  // ω = 45 min is covered by both; chronologicality picks the earliest
  // opening window.
  auto at45 = psi.At(Timestamp::FromMillis(45 * 60'000));
  ASSERT_TRUE(at45.has_value());
  EXPECT_EQ(at45->table, t1);
  // ω = 70 min is only covered by the second.
  auto at70 = psi.At(Timestamp::FromMillis(70 * 60'000));
  ASSERT_TRUE(at70.has_value());
  EXPECT_EQ(at70->table, t2);
  // ω = 95 min is uncovered.
  EXPECT_FALSE(psi.At(Timestamp::FromMillis(95 * 60'000)).has_value());
}

TEST(TimeVaryingTableTest, InsertEnforcesMonotonicity) {
  TimeVaryingTable psi;
  psi.Insert(TimeAnnotatedTable{Table({"a"}), Window(30, 60)});
  EXPECT_DEATH(psi.Insert(TimeAnnotatedTable{Table({"a"}), Window(0, 30)}),
               "monotonically");
}

}  // namespace
}  // namespace seraph
