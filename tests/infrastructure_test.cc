// Tests for the infrastructure modules: JSON serialization, metrics
// histograms, graph algorithms, and the EventQueue→engine StreamDriver.
#include <gtest/gtest.h>

#include <sstream>

#include "common/metrics.h"
#include "graph/algorithms.h"
#include "graph/graph_builder.h"
#include "io/json.h"
#include "seraph/sinks.h"
#include "seraph/stream_driver.h"
#include "workloads/network.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, ScalarValues) {
  EXPECT_EQ(io::ToJson(Value::Null()), "null");
  EXPECT_EQ(io::ToJson(Value::Bool(true)), "true");
  EXPECT_EQ(io::ToJson(Value::Int(-5)), "-5");
  EXPECT_EQ(io::ToJson(Value::Float(2.5)), "2.5");
  EXPECT_EQ(io::ToJson(Value::String("a\"b\\c\nd")),
            "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(io::ToJson(Value::String(std::string(1, '\x01') + "x")),
            "\"\\u0001x\"");
}

TEST(JsonTest, NonFiniteFloatsBecomeNull) {
  EXPECT_EQ(io::ToJson(Value::Float(std::numeric_limits<double>::
                                        quiet_NaN())),
            "null");
  EXPECT_EQ(
      io::ToJson(Value::Float(std::numeric_limits<double>::infinity())),
      "null");
}

TEST(JsonTest, ContainersAndEntities) {
  EXPECT_EQ(io::ToJson(Value::MakeList({Value::Int(1), Value::String("x")})),
            "[1,\"x\"]");
  EXPECT_EQ(io::ToJson(Value::MakeMap({{"k", Value::Int(1)}})),
            "{\"k\":1}");
  EXPECT_EQ(io::ToJson(Value::Node(NodeId{3})), "{\"$node\":3}");
  EXPECT_EQ(io::ToJson(Value::Relationship(RelId{4})), "{\"$rel\":4}");
  PathValue p;
  p.nodes = {NodeId{1}, NodeId{2}};
  p.rels = {RelId{9}};
  EXPECT_EQ(io::ToJson(Value::Path(p)),
            "{\"$path\":{\"nodes\":[1,2],\"rels\":[9]}}");
}

TEST(JsonTest, RecordsAndTables) {
  Record r;
  r.Set("b", Value::Int(2));
  r.Set("a", Value::Int(1));
  EXPECT_EQ(io::ToJson(r), "{\"a\":1,\"b\":2}");
  Table t({"a"});
  Record row;
  row.Set("a", Value::Int(7));
  t.Append(row);
  EXPECT_EQ(io::ToJson(t), "[{\"a\":7}]");
  TimeAnnotatedTable annotated{t, TimeInterval{T(0), T(5)}};
  std::string json = io::ToJson(annotated);
  EXPECT_NE(json.find("\"win_start\":\"1970-01-01T00:00\""),
            std::string::npos);
  EXPECT_NE(json.find("\"rows\":[{\"a\":7}]"), std::string::npos);
}

TEST(JsonTest, JsonLinesSinkEmitsOneObjectPerEvaluation) {
  std::ostringstream os;
  JsonLinesSink sink(&os);
  ContinuousEngine engine;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id SNAPSHOT EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine
                  .Ingest(GraphBuilder()
                              .Node(1, {"X"}, {{"id", Value::Int(1)}})
                              .Build(),
                          T(1))
                  .ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  std::string out = os.str();
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2);
  EXPECT_NE(out.find("\"query\":\"q\""), std::string::npos);
  EXPECT_NE(out.find("\"rows\":[{\"n.id\":1}]"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(HistogramTest, BasicStatistics) {
  Histogram h;
  for (int64_t v : {10, 20, 30, 40, 1000}) h.Record(v);
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 5);
  EXPECT_EQ(snap.min, 10);
  EXPECT_EQ(snap.max, 1000);
  EXPECT_DOUBLE_EQ(snap.mean, 220.0);
  EXPECT_GE(snap.p99, snap.p90);
  EXPECT_GE(snap.p90, snap.p50);
  EXPECT_LE(snap.p99, snap.max);
  EXPECT_GE(snap.p50, snap.min);
}

TEST(HistogramTest, EmptyAndReset) {
  Histogram h;
  EXPECT_EQ(h.Snapshot().count, 0);
  h.Record(5);
  EXPECT_EQ(h.Snapshot().count, 1);
  h.Reset();
  EXPECT_EQ(h.Snapshot().count, 0);
  EXPECT_EQ(h.Snapshot().max, 0);
}

TEST(HistogramTest, PercentileMonotoneOverSpread) {
  Histogram h;
  for (int64_t i = 1; i <= 1000; ++i) h.Record(i);
  HistogramSnapshot snap = h.Snapshot();
  // Power-of-two buckets give coarse but ordered estimates.
  EXPECT_GT(snap.p50, 256);
  EXPECT_LE(snap.p50, 768);
  EXPECT_GT(snap.p99, snap.p50);
}

TEST(HistogramTest, EngineLatencyIsRecorded) {
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  auto latency = engine.LatencyFor("q");
  ASSERT_TRUE(latency.ok());
  EXPECT_EQ(latency->count, 4);
  EXPECT_FALSE(engine.LatencyFor("nope").ok());
}

// ---------------------------------------------------------------------------
// Graph algorithms
// ---------------------------------------------------------------------------

PropertyGraph TwoComponents() {
  return GraphBuilder()
      .Node(1, {"A"})
      .Node(2, {"A"})
      .Node(3, {"A"})
      .Node(10, {"B"})
      .Node(11, {"B"})
      .Rel(1, 1, 2, "E")
      .Rel(2, 2, 3, "E")
      .Rel(3, 10, 11, "F")
      .Build();
}

TEST(GraphAlgorithmsTest, ConnectedComponents) {
  PropertyGraph g = TwoComponents();
  auto components = ConnectedComponents(g);
  EXPECT_EQ(components.at(NodeId{1}), 1);
  EXPECT_EQ(components.at(NodeId{3}), 1);
  EXPECT_EQ(components.at(NodeId{10}), 10);
  EXPECT_EQ(CountConnectedComponents(g), 2u);
  // Restricting to type F splits the E-chain into singletons.
  EXPECT_EQ(CountConnectedComponents(g, {.type = "F"}), 4u);
}

TEST(GraphAlgorithmsTest, HopDistancesAndReachability) {
  PropertyGraph g = TwoComponents();
  auto dist = HopDistances(g, NodeId{1});
  EXPECT_EQ(dist.at(NodeId{1}), 0);
  EXPECT_EQ(dist.at(NodeId{2}), 1);
  EXPECT_EQ(dist.at(NodeId{3}), 2);
  EXPECT_FALSE(dist.contains(NodeId{10}));
  EXPECT_TRUE(Reachable(g, NodeId{1}, NodeId{3}));
  EXPECT_FALSE(Reachable(g, NodeId{1}, NodeId{10}));
  EXPECT_TRUE(Reachable(g, NodeId{1}, NodeId{1}));
  EXPECT_FALSE(Reachable(g, NodeId{99}, NodeId{1}));
}

TEST(GraphAlgorithmsTest, DegreeStats) {
  PropertyGraph g = TwoComponents();
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 2u);
  EXPECT_EQ(stats.distribution.at(1), 4u);  // Nodes 1, 3, 10, 11.
  EXPECT_EQ(stats.distribution.at(2), 1u);  // Node 2.
}

TEST(GraphAlgorithmsTest, HealthyNetworkIsSingleComponent) {
  // §4.1's redundancy property: with no failures every rack can reach the
  // egress router.
  workloads::NetworkConfig config;
  config.num_ticks = 1;
  config.failure_probability = 0.0;
  auto events = workloads::GenerateNetworkStream(config);
  const PropertyGraph& g = events[0].graph;
  EXPECT_EQ(CountConnectedComponents(g), 1u);
  NodeId egress = g.NodesWithLabel("Router")[0];
  for (NodeId rack : g.NodesWithLabel("Rack")) {
    EXPECT_TRUE(Reachable(g, rack, egress));
  }
}

// ---------------------------------------------------------------------------
// StreamDriver
// ---------------------------------------------------------------------------

PropertyGraph Item(int64_t id) {
  return GraphBuilder().Node(id, {"X"}, {{"id", Value::Int(id)}}).Build();
}

TEST(StreamDriverTest, PumpsOrderedQueueAndEvaluates) {
  EventQueue queue;
  ASSERT_TRUE(queue.Produce(Item(1), T(1)).ok());
  ASSERT_TRUE(queue.Produce(Item(2), T(7)).ok());
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id SNAPSHOT EVERY PT5M })")
                  .ok());
  StreamDriver driver(&queue, &engine, {});
  auto delivered = driver.PumpAll();
  ASSERT_TRUE(delivered.ok()) << delivered.status();
  EXPECT_EQ(*delivered, 2);
  // Clock advanced to 7 → one evaluation (at 5) ran.
  EXPECT_EQ(sink.ResultsFor("q").size(), 1u);
  ASSERT_TRUE(driver.Finish().ok());
}

TEST(StreamDriverTest, ReordersOutOfOrderArrivals) {
  EventQueue queue;
  // The *queue* sees out-of-order production; its internal log requires
  // order, so feed via a raw vector — simulate by producing in two queues?
  // The queue enforces order, so out-of-order transport is modelled by
  // producing to the queue in arrival order with non-monotonic *event*
  // times carried by the graphs. For the driver test we bypass the queue
  // ordering constraint by using arrival-ordered timestamps but asking
  // the reorder buffer to hold elements back.
  ASSERT_TRUE(queue.Produce(Item(1), T(10)).ok());
  ASSERT_TRUE(queue.Produce(Item(2), T(12)).ok());
  ContinuousEngine engine;
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY q STARTING AT '1970-01-01T00:05'
    { MATCH (n:X) WITHIN PT30M EMIT n.id EVERY PT5M })")
                  .ok());
  StreamDriver::Options options;
  options.allowed_lateness = Duration::FromMinutes(5);
  StreamDriver driver(&queue, &engine, options);
  auto delivered = driver.PumpAll();
  ASSERT_TRUE(delivered.ok());
  // Watermark = 12 − 5 = 7: nothing releasable yet.
  EXPECT_EQ(*delivered, 0);
  ASSERT_TRUE(queue.Produce(Item(3), T(20)).ok());
  delivered = driver.PumpAll();
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 2);  // 10 and 12 released (watermark 15).
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(engine.stream().size(), 3u);
  EXPECT_EQ(driver.dropped(), 0);
}

}  // namespace
}  // namespace seraph
