// The worker pool behind parallel query evaluation: sizing, futures,
// worker ids, concurrent submission, and drain-on-destruction.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace seraph {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  // 0 and negatives mean "one per hardware thread", never less than 1.
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(ThreadPool::ResolveThreads(0), static_cast<int>(hw));
  }
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, FutureOrdersTaskEffects) {
  // future.wait() must establish happens-before: the coordinator reads
  // plain (non-atomic) state written by the task.
  ThreadPool pool(2);
  int value = 0;
  pool.Submit([&value] { value = 42; }).wait();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndInRange) {
  // The coordinator is not a worker.
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&] {
      int id = ThreadPool::CurrentWorkerId();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(id);
    }));
  }
  for (auto& f : futures) f.wait();
  ASSERT_FALSE(seen.empty());
  EXPECT_GE(*seen.begin(), 0);
  EXPECT_LT(*seen.rbegin(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No waits: destruction must still run everything already queued.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SubmitBatchRunsEveryTaskExactlyOnce) {
  ThreadPool pool(3);
  constexpr int kTasks = 200;
  std::vector<std::atomic<int>> runs(kTasks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
  }
  ThreadPool::BatchPtr batch = pool.SubmitBatch(std::move(tasks));
  pool.WaitAll(batch);
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPoolTest, WaitAllEstablishesHappensBefore) {
  // The waiter reads plain (non-atomic) state written by the tasks; TSan
  // verifies the edge when the suite runs under it.
  ThreadPool pool(2);
  std::vector<int> values(64, 0);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&values, i] { values[i] = i + 1; });
  }
  pool.WaitAll(pool.SubmitBatch(std::move(tasks)));
  for (int i = 0; i < 64; ++i) EXPECT_EQ(values[i], i + 1);
}

TEST(ThreadPoolTest, EmptyBatchCompletesImmediately) {
  ThreadPool pool(2);
  pool.WaitAll(pool.SubmitBatch({}));
}

TEST(ThreadPoolTest, NestedBatchFromWorkersDoesNotDeadlock) {
  // Every worker of a deliberately tiny pool submits its own sub-batch
  // and waits on it: with a plain future barrier this would park both
  // workers forever; help-drain must complete all sub-tasks.
  ThreadPool pool(2);
  std::atomic<int> subtasks_run{0};
  std::vector<std::future<void>> outer;
  for (int q = 0; q < 8; ++q) {
    outer.push_back(pool.Submit([&pool, &subtasks_run] {
      std::vector<std::function<void()>> sub;
      for (int m = 0; m < 16; ++m) {
        sub.push_back([&subtasks_run] { subtasks_run.fetch_add(1); });
      }
      pool.WaitAll(pool.SubmitBatch(std::move(sub)));
    }));
  }
  for (auto& f : outer) f.wait();
  EXPECT_EQ(subtasks_run.load(), 8 * 16);
}

TEST(ThreadPoolTest, WaitAllFromCoordinatorHelpsOnSingleWorkerPool) {
  // A one-worker pool that is busy: the coordinator's WaitAll must make
  // progress by itself.
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  std::future<void> blocker = pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 32; ++i) {
    tasks.push_back([&ran] { ran.fetch_add(1); });
  }
  ThreadPool::BatchPtr batch = pool.SubmitBatch(std::move(tasks));
  pool.WaitAll(batch);  // Worker is parked; the coordinator drains.
  EXPECT_EQ(ran.load(), 32);
  release.store(true);
  blocker.wait();
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 25; ++i) {
        futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
      }
      for (auto& f : futures) f.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace seraph
