// The worker pool behind parallel query evaluation: sizing, futures,
// worker ids, concurrent submission, and drain-on-destruction.
#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

namespace seraph {
namespace {

TEST(ThreadPoolTest, ResolveThreads) {
  EXPECT_EQ(ThreadPool::ResolveThreads(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreads(7), 7);
  // 0 and negatives mean "one per hardware thread", never less than 1.
  EXPECT_GE(ThreadPool::ResolveThreads(0), 1);
  EXPECT_GE(ThreadPool::ResolveThreads(-3), 1);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(ThreadPool::ResolveThreads(0), static_cast<int>(hw));
  }
}

TEST(ThreadPoolTest, SizeClampsToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.size(), 4);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (auto& f : futures) f.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, FutureOrdersTaskEffects) {
  // future.wait() must establish happens-before: the coordinator reads
  // plain (non-atomic) state written by the task.
  ThreadPool pool(2);
  int value = 0;
  pool.Submit([&value] { value = 42; }).wait();
  EXPECT_EQ(value, 42);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndInRange) {
  // The coordinator is not a worker.
  EXPECT_EQ(ThreadPool::CurrentWorkerId(), -1);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&] {
      int id = ThreadPool::CurrentWorkerId();
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(id);
    }));
  }
  for (auto& f : futures) f.wait();
  ASSERT_FALSE(seen.empty());
  EXPECT_GE(*seen.begin(), 0);
  EXPECT_LT(*seen.rbegin(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // No waits: destruction must still run everything already queued.
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::vector<std::thread> submitters;
  submitters.reserve(4);
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&pool, &ran] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 25; ++i) {
        futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
      }
      for (auto& f : futures) f.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(ran.load(), 100);
}

}  // namespace
}  // namespace seraph
