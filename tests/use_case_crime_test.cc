// The Section-4.2 crime-investigation use case end-to-end: persons seen at
// a crime scene inside the 30-minute window are reported once
// (ON ENTERING), and sightings expire with the window.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "workloads/pole.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Sighting(int64_t rel_id, int64_t person, int64_t location,
                       Timestamp at) {
  return GraphBuilder()
      .Node(person, {"Person"}, {{"person_id", Value::Int(person)}})
      .Node(10'000 + location, {"Location"},
            {{"location_id", Value::Int(location)}})
      .Rel(rel_id, person, 10'000 + location, "PRESENT_AT",
           {{"time", Value::DateTime(at)}})
      .Build();
}

PropertyGraph Crime(int64_t rel_id, int64_t crime, int64_t location,
                    Timestamp at) {
  return GraphBuilder()
      .Node(20'000 + crime, {"Crime"}, {{"crime_id", Value::Int(crime)}})
      .Node(10'000 + location, {"Location"},
            {{"location_id", Value::Int(location)}})
      .Rel(rel_id, 20'000 + crime, 10'000 + location, "OCCURRED_AT",
           {{"time", Value::DateTime(at)}})
      .Build();
}

class CrimeWatch : public ::testing::Test {
 protected:
  CrimeWatch() {
    engine_.AddSink(&sink_);
    Status s = engine_.RegisterText(
        workloads::CrimeInvestigationSeraphQuery(T(5)));
    EXPECT_TRUE(s.ok()) << s.ToString();
  }

  size_t RowsAt(int64_t minutes) {
    auto r = sink_.ResultAt("crime_watch", T(minutes));
    EXPECT_TRUE(r.has_value());
    return r.has_value() ? r->table.size() : 0;
  }

  ContinuousEngine engine_;
  CollectingSink sink_;
};

TEST_F(CrimeWatch, SuspectReportedOnceWhilePatternInWindow) {
  // Person 1 passes location 3 at minute 2; a crime occurs there at
  // minute 7.
  ASSERT_TRUE(engine_.Ingest(Sighting(1, 1, 3, T(2)), T(5)).ok());
  ASSERT_TRUE(engine_.Ingest(Crime(2, 1, 3, T(7)), T(10)).ok());
  ASSERT_TRUE(engine_.AdvanceTo(T(40)).ok());
  EXPECT_EQ(RowsAt(5), 0u);
  EXPECT_EQ(RowsAt(10), 1u);   // Pattern completes; ON ENTERING reports it.
  EXPECT_EQ(RowsAt(15), 0u);   // Still matching, but not new.
  EXPECT_EQ(RowsAt(30), 0u);
  // The sighting element (arrived @5) leaves the 30' window after 35.
  EXPECT_EQ(RowsAt(40), 0u);
}

TEST_F(CrimeWatch, NoReportForDifferentLocation) {
  ASSERT_TRUE(engine_.Ingest(Sighting(1, 1, 3, T(2)), T(5)).ok());
  ASSERT_TRUE(engine_.Ingest(Crime(2, 1, 4, T(7)), T(10)).ok());
  ASSERT_TRUE(engine_.AdvanceTo(T(20)).ok());
  EXPECT_EQ(RowsAt(10), 0u);
  EXPECT_EQ(RowsAt(15), 0u);
}

TEST_F(CrimeWatch, LateSightingMatchesWhileCrimeStillInWindow) {
  ASSERT_TRUE(engine_.Ingest(Crime(1, 1, 3, T(6)), T(10)).ok());
  ASSERT_TRUE(engine_.Ingest(Sighting(2, 2, 3, T(24)), T(25)).ok());
  ASSERT_TRUE(engine_.AdvanceTo(T(45)).ok());
  EXPECT_EQ(RowsAt(25), 1u);
  // Crime element (arrived @10) exits the window after 40; afterwards no
  // match (and ON EXITING semantics are tested in report_policy_test).
  EXPECT_EQ(RowsAt(45), 0u);
}

TEST_F(CrimeWatch, MultipleSuspectsEachReported) {
  PropertyGraph batch = Sighting(1, 1, 3, T(2));
  batch.MergeNode(NodeId{2},
                  NodeData{{"Person"}, {{"person_id", Value::Int(2)}}});
  RelData r;
  r.type = "PRESENT_AT";
  r.src = NodeId{2};
  r.trg = NodeId{10'003};
  r.properties = {{"time", Value::DateTime(T(3))}};
  ASSERT_TRUE(batch.MergeRelationship(RelId{5}, r).ok());
  ASSERT_TRUE(engine_.Ingest(std::move(batch), T(5)).ok());
  ASSERT_TRUE(engine_.Ingest(Crime(9, 1, 3, T(8)), T(10)).ok());
  ASSERT_TRUE(engine_.AdvanceTo(T(10)).ok());
  EXPECT_EQ(RowsAt(10), 2u);
}

TEST(CrimeWatchGenerated, EndToEndOverGeneratedStream) {
  workloads::PoleConfig config;
  config.num_events = 12;
  config.crime_probability = 0.5;
  auto events = workloads::GeneratePoleStream(config);
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(workloads::CrimeInvestigationSeraphQuery(
                      config.start + config.event_period))
                  .ok());
  for (const auto& e : events) {
    ASSERT_TRUE(engine.Ingest(e.graph, e.timestamp).ok());
  }
  ASSERT_TRUE(engine.Drain().ok());
  // Sanity: evaluations happened, rows (if any) carry the projected
  // columns, and every reported sighting is at the crime's location.
  const auto& entries = sink.ResultsFor("crime_watch").entries();
  ASSERT_FALSE(entries.empty());
  for (const auto& entry : entries) {
    for (const Record& row : entry.table.rows()) {
      EXPECT_FALSE(row.GetOrNull("p.person_id").is_null());
      EXPECT_FALSE(row.GetOrNull("c.crime_id").is_null());
      EXPECT_FALSE(row.GetOrNull("l.location_id").is_null());
    }
  }
}

}  // namespace
}  // namespace seraph
