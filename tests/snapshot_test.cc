// Snapshot graphs (Def. 5.5): full rebuild vs. incremental maintenance,
// including the property test that the two are observationally equal over
// randomized streams and window slides.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <random>

#include "graph/graph_builder.h"
#include "stream/snapshot.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraphStream RunningExample() {
  PropertyGraphStream s;
  Status ok =
      workloads::AppendEvents(workloads::BuildRunningExampleStream(), &s);
  EXPECT_TRUE(ok.ok());
  return s;
}

TEST(SnapshotTest, FullWindowEqualsFigure2) {
  PropertyGraphStream s = RunningExample();
  Timestamp start = Timestamp::Parse("2022-10-14T14:40").value();
  Timestamp end = Timestamp::Parse("2022-10-14T15:40").value();
  auto snapshot = BuildSnapshot(s, TimeInterval{start, end},
                                IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(*snapshot, workloads::BuildRunningExampleMergedGraph());
}

TEST(SnapshotTest, NarrowWindowSelectsPrefix) {
  PropertyGraphStream s = RunningExample();
  // (14:15, 15:15]: first three events → the §5.4 15:15h narrative.
  Timestamp start = Timestamp::Parse("2022-10-14T14:15").value();
  Timestamp end = Timestamp::Parse("2022-10-14T15:15").value();
  auto snapshot = BuildSnapshot(s, TimeInterval{start, end},
                                IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_relationships(), 5u);  // r1..r5.
  EXPECT_EQ(snapshot->num_nodes(), 6u);  // Stations 1-3, bikes 5, 6, 8.
}

TEST(SnapshotTest, EmptyWindowYieldsEmptyGraph) {
  PropertyGraphStream s = RunningExample();
  auto snapshot = BuildSnapshot(
      s, TimeInterval{T(0), T(1)}, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_nodes(), 0u);
}

TEST(SnapshotTest, LaterElementsWinOnPropertyConflicts) {
  PropertyGraphStream s;
  ASSERT_TRUE(
      s.Append(GraphBuilder()
                   .Node(1, {"N"}, {{"v", Value::Int(1)}})
                   .Build(),
               T(1))
          .ok());
  ASSERT_TRUE(
      s.Append(GraphBuilder()
                   .Node(1, {"N"}, {{"v", Value::Int(2)}})
                   .Build(),
               T(2))
          .ok());
  auto snapshot = BuildSnapshot(s, TimeInterval{T(0), T(5)},
                                IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->node(NodeId{1})->properties.at("v"), Value::Int(2));
}

TEST(IncrementalSnapshotterTest, MatchesRebuildOnRunningExample) {
  PropertyGraphStream s = RunningExample();
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  Timestamp start = Timestamp::Parse("2022-10-14T14:45").value();
  for (int i = 0; i <= 11; ++i) {
    Timestamp eval = start + Duration::FromMinutes(5 * i);
    TimeInterval window{eval - Duration::FromHours(1), eval};
    ASSERT_TRUE(inc.Advance(window).ok());
    auto rebuilt = BuildSnapshot(s, window,
                                 IntervalBounds::kLeftOpenRightClosed);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(inc.graph(), *rebuilt) << "at evaluation " << eval.ToString();
  }
}

TEST(IncrementalSnapshotterTest, EvictionRemovesExpiredEntities) {
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(GraphBuilder()
                           .Node(1, {"A"})
                           .Node(2, {"A"})
                           .Rel(1, 1, 2, "R")
                           .Build(),
                       T(0))
                  .ok());
  ASSERT_TRUE(s.Append(GraphBuilder().Node(3, {"B"}).Build(), T(10)).ok());
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(-5), T(5)}).ok());
  EXPECT_EQ(inc.graph().num_nodes(), 2u);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(5), T(15)}).ok());
  EXPECT_EQ(inc.graph().num_nodes(), 1u);
  EXPECT_EQ(inc.graph().num_relationships(), 0u);
  EXPECT_TRUE(inc.graph().HasNode(NodeId{3}));
}

TEST(IncrementalSnapshotterTest, EvictionRevertsPropertyOverwrites) {
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(GraphBuilder()
                           .Node(1, {"N"}, {{"v", Value::Int(1)}})
                           .Build(),
                       T(0))
                  .ok());
  ASSERT_TRUE(s.Append(GraphBuilder()
                           .Node(1, {"N"}, {{"v", Value::Int(2)}})
                           .Build(),
                       T(10))
                  .ok());
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(-5), T(15)}).ok());
  EXPECT_EQ(inc.graph().node(NodeId{1})->properties.at("v"), Value::Int(2));
  // After the first element expires, only the *second* contribution
  // remains; after both expire the node disappears.
  ASSERT_TRUE(inc.Advance(TimeInterval{T(5), T(15)}).ok());
  EXPECT_EQ(inc.graph().node(NodeId{1})->properties.at("v"), Value::Int(2));
  ASSERT_TRUE(inc.Advance(TimeInterval{T(11), T(20)}).ok());
  EXPECT_FALSE(inc.graph().HasNode(NodeId{1}));
}

TEST(IncrementalSnapshotterTest, RejectsBackwardSlides) {
  PropertyGraphStream s = RunningExample();
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(100), T(200)}).ok());
  EXPECT_FALSE(inc.Advance(TimeInterval{T(50), T(150)}).ok());
}

// Property test: on random streams, sliding windows of random width/slide,
// the incremental snapshot equals the from-scratch rebuild at every step.
class SnapshotEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotEquivalenceTest, IncrementalEqualsRebuild) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> node_dist(1, 20);
  std::uniform_int_distribution<int> per_event(1, 5);
  std::uniform_int_distribution<int> gap(1, 4);
  std::uniform_int_distribution<int> width_dist(5, 30);
  std::uniform_int_distribution<int> slide_dist(1, 10);

  PropertyGraphStream s;
  int64_t now = 0;
  int64_t rel_id = 0;
  for (int e = 0; e < 40; ++e) {
    now += gap(rng);
    PropertyGraph g;
    int n = per_event(rng);
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) {
      NodeId id{node_dist(rng)};
      NodeData data;
      data.labels = {"N"};
      data.properties = {{"seen_at", Value::Int(now)}};
      g.MergeNode(id, data);
      ids.push_back(id);
    }
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      if (ids[i] == ids[i + 1]) continue;
      RelData rel;
      rel.type = "E";
      rel.src = ids[i];
      rel.trg = ids[i + 1];
      ASSERT_TRUE(g.MergeRelationship(RelId{++rel_id}, rel).ok());
    }
    ASSERT_TRUE(s.Append(std::move(g), T(now)).ok());
  }

  int width = width_dist(rng);
  int slide = slide_dist(rng);
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  for (int64_t end = 0; end <= now + slide; end += slide) {
    TimeInterval window{T(end - width), T(end)};
    ASSERT_TRUE(inc.Advance(window).ok());
    auto rebuilt =
        BuildSnapshot(s, window, IntervalBounds::kLeftOpenRightClosed);
    ASSERT_TRUE(rebuilt.ok());
    ASSERT_EQ(inc.graph(), *rebuilt)
        << "window [" << end - width << ", " << end << "] width=" << width
        << " slide=" << slide;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotEquivalenceTest,
                         ::testing::Range(0, 20));

// Round multiplier for fuzz loops; CI sets SERAPH_FUZZ_ROUNDS to fuzz
// harder under sanitizers without slowing local runs.
int FuzzRounds(int base) {
  if (const char* env = std::getenv("SERAPH_FUZZ_ROUNDS")) {
    long factor = std::strtol(env, nullptr, 10);
    if (factor > 1) return base * static_cast<int>(factor);
  }
  return base;
}

// Adversarial oracle: the incremental snapshotter must equal the
// from-scratch rebuild under hostile churn — a tiny id space so many
// elements contribute to the *same* entities (merge overlap), label sets
// that only exist through union across elements, property overwrites
// whose eviction must *revert* values, slides larger than the window
// width (β > α: full turnover with coverage gaps), and windows that
// empty out entirely. Delta matching leans on this invariant directly,
// plus the guarantee that `last_dirty_*` is a superset of every entity
// whose payload or presence actually changed.
class AdversarialSnapshotTest : public ::testing::TestWithParam<int> {};

TEST_P(AdversarialSnapshotTest, IncrementalEqualsRebuildUnderChurn) {
  for (int round = 0; round < FuzzRounds(4); ++round) {
    std::mt19937_64 rng(10'000 + 97 * GetParam() + round);
    std::uniform_int_distribution<int64_t> node_dist(1, 6);
    std::uniform_int_distribution<int> label_dist(0, 2);
    std::uniform_int_distribution<int> per_event(1, 4);
    std::uniform_int_distribution<int> gap(1, 5);
    std::uniform_int_distribution<int> coin(0, 1);
    static const char* kLabels[] = {"A", "B", "C"};

    // Relationship endpoints/types must be consistent per id across the
    // whole stream (ingestion-merge invariant), so fix them up front;
    // events then re-contribute the same rel with fresh properties.
    struct RelShape {
      NodeId src, trg;
      const char* type;
    };
    std::vector<RelShape> rel_shapes;
    for (int64_t i = 0; i < 8; ++i) {
      rel_shapes.push_back(RelShape{NodeId{node_dist(rng)},
                                    NodeId{node_dist(rng)},
                                    coin(rng) ? "E" : "F"});
    }

    PropertyGraphStream s;
    int64_t now = 0;
    for (int e = 0; e < 60; ++e) {
      now += gap(rng);
      PropertyGraph g;
      const int n = per_event(rng);
      for (int i = 0; i < n; ++i) {
        NodeId id{node_dist(rng)};
        NodeData data;
        data.labels = {kLabels[label_dist(rng)]};
        data.properties = {{"v", Value::Int(e)}};
        if (coin(rng)) data.properties["w"] = Value::Int(now);
        g.MergeNode(id, data);
      }
      if (coin(rng)) {
        const RelShape& shape =
            rel_shapes[static_cast<size_t>(e) % rel_shapes.size()];
        RelData rel;
        rel.type = shape.type;
        rel.src = shape.src;
        rel.trg = shape.trg;
        rel.properties = {{"at", Value::Int(e)}};
        ASSERT_TRUE(
            g.MergeRelationship(RelId{1 + e % 8}, rel).ok());
      }
      ASSERT_TRUE(s.Append(std::move(g), T(now)).ok());
    }

    std::uniform_int_distribution<int> width_dist(2, 12);
    std::uniform_int_distribution<int> slide_dist(1, 30);
    const int width = width_dist(rng);
    IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
    for (int64_t end = 0; end <= now + width;
         end += slide_dist(rng)) {  // Slides routinely exceed the width.
      const PropertyGraph before = inc.graph();
      TimeInterval window{T(end - width), T(end)};
      ASSERT_TRUE(inc.Advance(window).ok());
      auto rebuilt =
          BuildSnapshot(s, window, IntervalBounds::kLeftOpenRightClosed);
      ASSERT_TRUE(rebuilt.ok());
      ASSERT_EQ(inc.graph(), *rebuilt)
          << "window (" << end - width << ", " << end << "] width=" << width;

      // Dirty-superset guarantee: every node/rel whose payload or
      // presence changed across this advance appears in last_dirty_*.
      const PropertyGraph& after = inc.graph();
      auto node_changed = [&](NodeId id) {
        const NodeData* a = before.node(id);
        const NodeData* b = after.node(id);
        return (a == nullptr) != (b == nullptr) ||
               (a != nullptr && !(*a == *b));
      };
      auto rel_changed = [&](RelId id) {
        const RelData* a = before.relationship(id);
        const RelData* b = after.relationship(id);
        return (a == nullptr) != (b == nullptr) ||
               (a != nullptr && !(*a == *b));
      };
      const auto& dirty_nodes = inc.last_dirty_nodes();
      const auto& dirty_rels = inc.last_dirty_rels();
      for (const PropertyGraph* side : {&before, &after}) {
        for (NodeId id : side->NodeIds()) {
          if (node_changed(id)) {
            EXPECT_TRUE(std::binary_search(dirty_nodes.begin(),
                                           dirty_nodes.end(), id))
                << "changed node " << id.value << " not reported dirty";
          }
        }
        for (RelId id : side->RelationshipIds()) {
          if (rel_changed(id)) {
            EXPECT_TRUE(std::binary_search(dirty_rels.begin(),
                                           dirty_rels.end(), id))
                << "changed rel " << id.value << " not reported dirty";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdversarialSnapshotTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace seraph
