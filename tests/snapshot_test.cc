// Snapshot graphs (Def. 5.5): full rebuild vs. incremental maintenance,
// including the property test that the two are observationally equal over
// randomized streams and window slides.
#include <gtest/gtest.h>

#include <random>

#include "graph/graph_builder.h"
#include "stream/snapshot.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraphStream RunningExample() {
  PropertyGraphStream s;
  Status ok =
      workloads::AppendEvents(workloads::BuildRunningExampleStream(), &s);
  EXPECT_TRUE(ok.ok());
  return s;
}

TEST(SnapshotTest, FullWindowEqualsFigure2) {
  PropertyGraphStream s = RunningExample();
  Timestamp start = Timestamp::Parse("2022-10-14T14:40").value();
  Timestamp end = Timestamp::Parse("2022-10-14T15:40").value();
  auto snapshot = BuildSnapshot(s, TimeInterval{start, end},
                                IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  EXPECT_EQ(*snapshot, workloads::BuildRunningExampleMergedGraph());
}

TEST(SnapshotTest, NarrowWindowSelectsPrefix) {
  PropertyGraphStream s = RunningExample();
  // (14:15, 15:15]: first three events → the §5.4 15:15h narrative.
  Timestamp start = Timestamp::Parse("2022-10-14T14:15").value();
  Timestamp end = Timestamp::Parse("2022-10-14T15:15").value();
  auto snapshot = BuildSnapshot(s, TimeInterval{start, end},
                                IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_relationships(), 5u);  // r1..r5.
  EXPECT_EQ(snapshot->num_nodes(), 6u);  // Stations 1-3, bikes 5, 6, 8.
}

TEST(SnapshotTest, EmptyWindowYieldsEmptyGraph) {
  PropertyGraphStream s = RunningExample();
  auto snapshot = BuildSnapshot(
      s, TimeInterval{T(0), T(1)}, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->num_nodes(), 0u);
}

TEST(SnapshotTest, LaterElementsWinOnPropertyConflicts) {
  PropertyGraphStream s;
  ASSERT_TRUE(
      s.Append(GraphBuilder()
                   .Node(1, {"N"}, {{"v", Value::Int(1)}})
                   .Build(),
               T(1))
          .ok());
  ASSERT_TRUE(
      s.Append(GraphBuilder()
                   .Node(1, {"N"}, {{"v", Value::Int(2)}})
                   .Build(),
               T(2))
          .ok());
  auto snapshot = BuildSnapshot(s, TimeInterval{T(0), T(5)},
                                IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot->node(NodeId{1})->properties.at("v"), Value::Int(2));
}

TEST(IncrementalSnapshotterTest, MatchesRebuildOnRunningExample) {
  PropertyGraphStream s = RunningExample();
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  Timestamp start = Timestamp::Parse("2022-10-14T14:45").value();
  for (int i = 0; i <= 11; ++i) {
    Timestamp eval = start + Duration::FromMinutes(5 * i);
    TimeInterval window{eval - Duration::FromHours(1), eval};
    ASSERT_TRUE(inc.Advance(window).ok());
    auto rebuilt = BuildSnapshot(s, window,
                                 IntervalBounds::kLeftOpenRightClosed);
    ASSERT_TRUE(rebuilt.ok());
    EXPECT_EQ(inc.graph(), *rebuilt) << "at evaluation " << eval.ToString();
  }
}

TEST(IncrementalSnapshotterTest, EvictionRemovesExpiredEntities) {
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(GraphBuilder()
                           .Node(1, {"A"})
                           .Node(2, {"A"})
                           .Rel(1, 1, 2, "R")
                           .Build(),
                       T(0))
                  .ok());
  ASSERT_TRUE(s.Append(GraphBuilder().Node(3, {"B"}).Build(), T(10)).ok());
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(-5), T(5)}).ok());
  EXPECT_EQ(inc.graph().num_nodes(), 2u);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(5), T(15)}).ok());
  EXPECT_EQ(inc.graph().num_nodes(), 1u);
  EXPECT_EQ(inc.graph().num_relationships(), 0u);
  EXPECT_TRUE(inc.graph().HasNode(NodeId{3}));
}

TEST(IncrementalSnapshotterTest, EvictionRevertsPropertyOverwrites) {
  PropertyGraphStream s;
  ASSERT_TRUE(s.Append(GraphBuilder()
                           .Node(1, {"N"}, {{"v", Value::Int(1)}})
                           .Build(),
                       T(0))
                  .ok());
  ASSERT_TRUE(s.Append(GraphBuilder()
                           .Node(1, {"N"}, {{"v", Value::Int(2)}})
                           .Build(),
                       T(10))
                  .ok());
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(-5), T(15)}).ok());
  EXPECT_EQ(inc.graph().node(NodeId{1})->properties.at("v"), Value::Int(2));
  // After the first element expires, only the *second* contribution
  // remains; after both expire the node disappears.
  ASSERT_TRUE(inc.Advance(TimeInterval{T(5), T(15)}).ok());
  EXPECT_EQ(inc.graph().node(NodeId{1})->properties.at("v"), Value::Int(2));
  ASSERT_TRUE(inc.Advance(TimeInterval{T(11), T(20)}).ok());
  EXPECT_FALSE(inc.graph().HasNode(NodeId{1}));
}

TEST(IncrementalSnapshotterTest, RejectsBackwardSlides) {
  PropertyGraphStream s = RunningExample();
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  ASSERT_TRUE(inc.Advance(TimeInterval{T(100), T(200)}).ok());
  EXPECT_FALSE(inc.Advance(TimeInterval{T(50), T(150)}).ok());
}

// Property test: on random streams, sliding windows of random width/slide,
// the incremental snapshot equals the from-scratch rebuild at every step.
class SnapshotEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SnapshotEquivalenceTest, IncrementalEqualsRebuild) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> node_dist(1, 20);
  std::uniform_int_distribution<int> per_event(1, 5);
  std::uniform_int_distribution<int> gap(1, 4);
  std::uniform_int_distribution<int> width_dist(5, 30);
  std::uniform_int_distribution<int> slide_dist(1, 10);

  PropertyGraphStream s;
  int64_t now = 0;
  int64_t rel_id = 0;
  for (int e = 0; e < 40; ++e) {
    now += gap(rng);
    PropertyGraph g;
    int n = per_event(rng);
    std::vector<NodeId> ids;
    for (int i = 0; i < n; ++i) {
      NodeId id{node_dist(rng)};
      NodeData data;
      data.labels = {"N"};
      data.properties = {{"seen_at", Value::Int(now)}};
      g.MergeNode(id, data);
      ids.push_back(id);
    }
    for (size_t i = 0; i + 1 < ids.size(); ++i) {
      if (ids[i] == ids[i + 1]) continue;
      RelData rel;
      rel.type = "E";
      rel.src = ids[i];
      rel.trg = ids[i + 1];
      ASSERT_TRUE(g.MergeRelationship(RelId{++rel_id}, rel).ok());
    }
    ASSERT_TRUE(s.Append(std::move(g), T(now)).ok());
  }

  int width = width_dist(rng);
  int slide = slide_dist(rng);
  IncrementalSnapshotter inc(&s, IntervalBounds::kLeftOpenRightClosed);
  for (int64_t end = 0; end <= now + slide; end += slide) {
    TimeInterval window{T(end - width), T(end)};
    ASSERT_TRUE(inc.Advance(window).ok());
    auto rebuilt =
        BuildSnapshot(s, window, IntervalBounds::kLeftOpenRightClosed);
    ASSERT_TRUE(rebuilt.ok());
    ASSERT_EQ(inc.graph(), *rebuilt)
        << "window [" << end - width << ", " << end << "] width=" << width
        << " slide=" << slide;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotEquivalenceTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace seraph
