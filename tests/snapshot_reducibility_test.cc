// Snapshot reducibility (Def. 5.8) — the load-bearing invariant of the
// continuous semantics: at every evaluation time instant, the continuous
// query's SNAPSHOT result equals its non-streaming counterpart evaluated
// over the active window's snapshot graph, built independently.
#include <gtest/gtest.h>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "seraph/continuous_engine.h"
#include "stream/snapshot.h"
#include "stream/window.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

struct Case {
  const char* name;
  const char* seraph_body;   // Between the braces, EMIT ... SNAPSHOT form.
  const char* cypher;        // The non-streaming counterpart Q.
  int width_minutes;
  int every_minutes;
};

// The bodies use a single WITHIN width so Q is evaluated over exactly one
// snapshot graph.
const Case kCases[] = {
    {"rentals",
     "MATCH (b:Bike)-[r:rentedAt]->(s:Station) WITHIN PT30M "
     "EMIT r.user_id, s.id SNAPSHOT EVERY PT5M",
     "MATCH (b:Bike)-[r:rentedAt]->(s:Station) RETURN r.user_id, s.id",
     30, 5},
    {"chains",
     "MATCH q = (b:Bike)-[:returnedAt|rentedAt*2..3]-(o:Station) "
     "WITHIN PT45M "
     "EMIT [n IN nodes(q) | id(n)] AS trail SNAPSHOT EVERY PT10M",
     "MATCH q = (b:Bike)-[:returnedAt|rentedAt*2..3]-(o:Station) "
     "RETURN [n IN nodes(q) | id(n)] AS trail",
     45, 10},
    {"aggregated",
     "MATCH (b:Bike)-[r:returnedAt]->(s:Station) WITHIN PT60M "
     "EMIT s.id, count(*) AS returns, avg(r.duration) AS mean "
     "SNAPSHOT EVERY PT15M",
     "MATCH (b:Bike)-[r:returnedAt]->(s:Station) "
     "RETURN s.id, count(*) AS returns, avg(r.duration) AS mean",
     60, 15},
};

class SnapshotReducibilityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SnapshotReducibilityTest, ContinuousEqualsOneTimeOverSnapshot) {
  auto [case_index, seed] = GetParam();
  const Case& c = kCases[case_index];

  workloads::BikeSharingConfig config;
  config.seed = static_cast<uint64_t>(seed) * 7919 + 3;
  config.num_events = 24;
  config.num_stations = 6;
  config.num_bikes = 12;
  config.num_users = 15;
  std::vector<workloads::Event> events =
      workloads::GenerateBikeSharingStream(config);
  if (events.empty()) GTEST_SKIP() << "empty generated stream";

  // Continuous evaluation.
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  std::string registered = std::string("REGISTER QUERY cq STARTING AT "
                                       "'1970-01-01T00:05' { ") +
                           c.seraph_body + " }";
  ASSERT_TRUE(engine.RegisterText(registered).ok());
  PropertyGraphStream mirror;
  for (const auto& event : events) {
    ASSERT_TRUE(engine.Ingest(event.graph, event.timestamp).ok());
    ASSERT_TRUE(mirror.Append(event.graph, event.timestamp).ok());
  }
  Timestamp horizon = events.back().timestamp;
  ASSERT_TRUE(engine.AdvanceTo(horizon).ok());

  // Independent one-time evaluation per ET instant.
  auto one_time = ParseCypherQuery(c.cypher);
  ASSERT_TRUE(one_time.ok()) << one_time.status();
  EvaluationTimes et(Timestamp::FromMillis(5 * 60'000),
                     Duration::FromMinutes(c.every_minutes));
  int checked = 0;
  for (Timestamp t : et.UpTo(horizon)) {
    TimeInterval window{t - Duration::FromMinutes(c.width_minutes), t};
    auto snapshot = BuildSnapshot(mirror, window,
                                  IntervalBounds::kLeftOpenRightClosed);
    ASSERT_TRUE(snapshot.ok());
    ExecutionOptions options;
    options.now = t;
    options.window = window;
    auto expected = ExecuteQueryOnGraph(*one_time, *snapshot, options);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto actual = sink.ResultAt("cq", t);
    ASSERT_TRUE(actual.has_value()) << t.ToString();
    EXPECT_EQ(actual->table, *expected)
        << c.name << " diverges at " << t.ToString();
    ++checked;
  }
  EXPECT_GT(checked, 3);
}

INSTANTIATE_TEST_SUITE_P(
    CasesAndSeeds, SnapshotReducibilityTest,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 6)),
    [](const auto& info) {
      return std::string(kCases[std::get<0>(info.param)].name) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// The same invariant under the literal Def. 5.9/5.11 semantics: the
// one-time counterpart runs over the active *formal* window clamped at
// the evaluation instant (causality; DESIGN.md §2).
class PaperFormalReducibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(PaperFormalReducibilityTest, ContinuousEqualsOneTimeOverSnapshot) {
  const Case& c = kCases[0];  // The simple-rentals body.
  workloads::BikeSharingConfig config;
  config.seed = static_cast<uint64_t>(GetParam()) * 131 + 17;
  config.num_events = 24;
  config.num_stations = 6;
  config.num_bikes = 12;
  config.num_users = 15;
  std::vector<workloads::Event> events =
      workloads::GenerateBikeSharingStream(config);
  if (events.empty()) GTEST_SKIP() << "empty generated stream";

  EngineOptions options;
  options.semantics = WindowSemantics::kPaperFormal;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  std::string registered = std::string("REGISTER QUERY cq STARTING AT "
                                       "'1970-01-01T00:05' { ") +
                           c.seraph_body + " }";
  ASSERT_TRUE(engine.RegisterText(registered).ok());
  PropertyGraphStream mirror;
  for (const auto& event : events) {
    ASSERT_TRUE(engine.Ingest(event.graph, event.timestamp).ok());
    ASSERT_TRUE(mirror.Append(event.graph, event.timestamp).ok());
  }
  Timestamp horizon = events.back().timestamp;
  ASSERT_TRUE(engine.AdvanceTo(horizon).ok());

  auto one_time = ParseCypherQuery(c.cypher);
  ASSERT_TRUE(one_time.ok());
  WindowConfig window_config{Timestamp::FromMillis(5 * 60'000),
                             Duration::FromMinutes(c.width_minutes),
                             Duration::FromMinutes(c.every_minutes),
                             WindowSemantics::kPaperFormal};
  EvaluationTimes et(Timestamp::FromMillis(5 * 60'000),
                     Duration::FromMinutes(c.every_minutes));
  for (Timestamp t : et.UpTo(horizon)) {
    auto window = window_config.ActiveWindow(t);
    ASSERT_TRUE(window.has_value());
    TimeInterval effective = *window;
    if (t < effective.end) {
      effective.end = Timestamp::FromMillis(t.millis() + 1);
    }
    auto snapshot =
        BuildSnapshot(mirror, effective, window_config.bounds());
    ASSERT_TRUE(snapshot.ok());
    ExecutionOptions exec;
    exec.now = t;
    exec.window = window;
    auto expected = ExecuteQueryOnGraph(*one_time, *snapshot, exec);
    ASSERT_TRUE(expected.ok());
    auto actual = sink.ResultAt("cq", t);
    ASSERT_TRUE(actual.has_value()) << t.ToString();
    EXPECT_EQ(actual->table, *expected) << "diverges at " << t.ToString();
    EXPECT_EQ(actual->window, *window) << "annotation at " << t.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PaperFormalReducibilityTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace seraph
