#include <gtest/gtest.h>

#include "temporal/duration.h"
#include "temporal/interval.h"
#include "temporal/timestamp.h"

namespace seraph {
namespace {

// ---------------------------------------------------------------------------
// Timestamp
// ---------------------------------------------------------------------------

TEST(TimestampTest, ParsesDateOnly) {
  auto t = Timestamp::Parse("2022-10-14");
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->ToString(), "2022-10-14T00:00");
}

TEST(TimestampTest, ParsesDateTime) {
  auto t = Timestamp::Parse("2022-10-14T14:45");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "2022-10-14T14:45");
  EXPECT_EQ(t->ToClockString(), "14:45");
}

TEST(TimestampTest, ParsesSecondsAndMillis) {
  auto t = Timestamp::Parse("2022-10-14T14:45:30.250");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "2022-10-14T14:45:30.250");
}

TEST(TimestampTest, ToleratesPaperHourSuffixAndZulu) {
  auto a = Timestamp::Parse("2022-10-14T14:45h");
  ASSERT_TRUE(a.ok());
  auto b = Timestamp::Parse("2022-10-14T14:45Z");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->millis(), b->millis());
}

TEST(TimestampTest, RejectsMalformed) {
  EXPECT_FALSE(Timestamp::Parse("").ok());
  EXPECT_FALSE(Timestamp::Parse("2022").ok());
  EXPECT_FALSE(Timestamp::Parse("2022-13-01").ok());
  EXPECT_FALSE(Timestamp::Parse("2022-02-30").ok());
  EXPECT_FALSE(Timestamp::Parse("2022-10-14T25:00").ok());
  EXPECT_FALSE(Timestamp::Parse("2022-10-14T14:45junk").ok());
}

TEST(TimestampTest, LeapYearRoundTrip) {
  auto t = Timestamp::Parse("2024-02-29T12:00");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ToString(), "2024-02-29T12:00");
  EXPECT_FALSE(Timestamp::Parse("2023-02-29T12:00").ok());
}

TEST(TimestampTest, ArithmeticWithDurations) {
  auto t = Timestamp::Parse("2022-10-14T14:45").value();
  Timestamp later = t + Duration::FromMinutes(30);
  EXPECT_EQ(later.ToString(), "2022-10-14T15:15");
  EXPECT_EQ((later - t).millis(), Duration::FromMinutes(30).millis());
  EXPECT_EQ((t - Duration::FromHours(1)).ToString(), "2022-10-14T13:45");
}

TEST(TimestampTest, OrderingAcrossDays) {
  auto a = Timestamp::Parse("2022-10-14T23:59").value();
  auto b = Timestamp::Parse("2022-10-15T00:00").value();
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
}

TEST(TimestampTest, CivilConversionStability) {
  // Sweep a range of instants and verify Parse(ToString(t)) == t.
  for (int64_t ms : {0LL, 86'400'000LL, 1'665'758'700'000LL,
                     -86'400'000LL, 253'402'300'799'000LL % 1'000'000'000'000LL}) {
    Timestamp t = Timestamp::FromMillis(ms);
    auto round = Timestamp::Parse(t.ToString());
    ASSERT_TRUE(round.ok()) << t.ToString();
    EXPECT_EQ(round->millis(), ms) << t.ToString();
  }
}

// ---------------------------------------------------------------------------
// Duration
// ---------------------------------------------------------------------------

TEST(DurationTest, ParsesPaperForms) {
  EXPECT_EQ(Duration::Parse("PT5M")->millis(), 5 * 60 * 1000);
  EXPECT_EQ(Duration::Parse("PT1H")->millis(), 60 * 60 * 1000);
  EXPECT_EQ(Duration::Parse("PT10M")->millis(), 10 * 60 * 1000);
  EXPECT_EQ(Duration::Parse("PT30S")->millis(), 30 * 1000);
}

TEST(DurationTest, ParsesCompositeForms) {
  EXPECT_EQ(Duration::Parse("P1DT2H30M")->millis(),
            (26 * 60 + 30) * 60 * 1000);
  EXPECT_EQ(Duration::Parse("P2W")->millis(), 14LL * 24 * 3600 * 1000);
  EXPECT_EQ(Duration::Parse("PT0.5S")->millis(), 500);
  EXPECT_EQ(Duration::Parse("-PT1M")->millis(), -60 * 1000);
}

TEST(DurationTest, RejectsCalendarAndMalformed) {
  EXPECT_FALSE(Duration::Parse("P1Y").ok());
  EXPECT_FALSE(Duration::Parse("P2M").ok());  // Month (date position).
  EXPECT_FALSE(Duration::Parse("PT").ok());
  EXPECT_FALSE(Duration::Parse("5M").ok());
  EXPECT_FALSE(Duration::Parse("").ok());
  EXPECT_FALSE(Duration::Parse("PT5X").ok());
}

TEST(DurationTest, RoundTripsToString) {
  for (const char* text : {"PT5M", "PT1H", "P1DT2H30M", "PT30S", "PT0S"}) {
    Duration d = Duration::Parse(text).value();
    EXPECT_EQ(Duration::Parse(d.ToString())->millis(), d.millis()) << text;
  }
}

TEST(DurationTest, Arithmetic) {
  Duration a = Duration::FromMinutes(5);
  Duration b = Duration::FromMinutes(3);
  EXPECT_EQ((a + b).millis(), Duration::FromMinutes(8).millis());
  EXPECT_EQ((a - b).millis(), Duration::FromMinutes(2).millis());
  EXPECT_EQ((a * 3).millis(), Duration::FromMinutes(15).millis());
  EXPECT_TRUE((b - a).is_negative());
}

// ---------------------------------------------------------------------------
// TimeInterval
// ---------------------------------------------------------------------------

TEST(TimeIntervalTest, BoundsPolicies) {
  Timestamp start = Timestamp::FromMillis(1000);
  Timestamp end = Timestamp::FromMillis(2000);
  TimeInterval interval{start, end};
  // Left-closed right-open: [1000, 2000).
  EXPECT_TRUE(interval.Contains(start, IntervalBounds::kLeftClosedRightOpen));
  EXPECT_FALSE(interval.Contains(end, IntervalBounds::kLeftClosedRightOpen));
  // Left-open right-closed: (1000, 2000].
  EXPECT_FALSE(interval.Contains(start, IntervalBounds::kLeftOpenRightClosed));
  EXPECT_TRUE(interval.Contains(end, IntervalBounds::kLeftOpenRightClosed));
  EXPECT_TRUE(interval.Contains(Timestamp::FromMillis(1500),
                                IntervalBounds::kLeftClosedRightOpen));
  EXPECT_TRUE(interval.Contains(Timestamp::FromMillis(1500),
                                IntervalBounds::kLeftOpenRightClosed));
}

TEST(TimeIntervalTest, WidthAndEmpty) {
  TimeInterval interval{Timestamp::FromMillis(0), Timestamp::FromMillis(0)};
  EXPECT_TRUE(interval.empty());
  TimeInterval wide{Timestamp::FromMillis(0), Timestamp::FromMillis(3600000)};
  EXPECT_EQ(wide.width().millis(), Duration::FromHours(1).millis());
}

}  // namespace
}  // namespace seraph
