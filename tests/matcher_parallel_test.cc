// Serial/parallel matcher equivalence: morsel-partitioned seed matching
// (docs/INTERNALS.md, "Intra-query parallelism") must produce a result
// bag bit-identical — content *and* row order — to the serial DFS, for
// every thread count and morsel size, across the full pattern feature
// set (chains, comma joins with the relationship-isomorphism rule,
// var-length expansion, shortestPath, multi-label seeds, exists()).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "common/cancel.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "cypher/executor.h"
#include "cypher/matcher.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"

namespace seraph {
namespace {

// A random labelled multigraph. Node labels are drawn from {A}, {B},
// {A,B}, or {} so label-indexed, multi-label, and full-scan seeding all
// occur; relationships get types R/S and a weight property.
PropertyGraph RandomGraph(uint32_t seed, int num_nodes, int num_rels) {
  std::mt19937 rng(seed);
  GraphBuilder builder;
  for (int i = 1; i <= num_nodes; ++i) {
    std::vector<std::string> labels;
    switch (rng() % 4) {
      case 0: labels = {"A"}; break;
      case 1: labels = {"B"}; break;
      case 2: labels = {"A", "B"}; break;
      default: break;  // Unlabelled.
    }
    builder.Node(i, labels,
                 {{"v", Value::Int(static_cast<int64_t>(rng() % 10))}});
  }
  for (int i = 1; i <= num_rels; ++i) {
    int64_t src = 1 + static_cast<int64_t>(rng() % num_nodes);
    int64_t trg = 1 + static_cast<int64_t>(rng() % num_nodes);
    builder.Rel(i, src, trg, (rng() % 3 == 0) ? "S" : "R",
                {{"w", Value::Int(static_cast<int64_t>(rng() % 5))}});
  }
  return builder.Build();
}

// Every feature of the matcher the partitioned path must preserve.
const char* const kQueries[] = {
    // Label-indexed seed, single hop.
    "MATCH (a:A)-[r:R]->(b) RETURN a, r, b",
    // Full-scan seed (no labels) and a two-hop chain.
    "MATCH (a)-[:R]->(b)-[:S]->(c) RETURN a, b, c",
    // Multi-label seed: the scan starts from the more selective index.
    "MATCH (n:A:B) RETURN n",
    // Property-constrained seed.
    "MATCH (a:A {v: 3})-[r]->(b) RETURN a, b",
    // Comma join: relationship isomorphism across patterns of one clause.
    "MATCH (a:A)-[r1]->(b), (b)-[r2]->(c) RETURN a, b, c",
    // Var-length with a bounded hop range.
    "MATCH (a:A)-[rs:R*1..3]->(b:B) RETURN a, b",
    // shortestPath seeded from the partitioned source enumeration.
    "MATCH p = shortestPath((a:A)-[:R*..4]->(b:B)) RETURN a, b, length(p)",
    // exists() inside WHERE: matched serially inside each morsel.
    "MATCH (a:A) WHERE exists((a)-[:S]->()) RETURN a",
    // Aggregation downstream of the match (exercises executor plumbing).
    "MATCH (a:A)-[r]->(b) RETURN b.v AS v, count(*) AS c ORDER BY v",
};

Table RunQuery(const Query& query, const PropertyGraph& graph,
          const MatchParallelism* par) {
  ExecutionOptions options;
  options.match_parallelism = par;
  auto result = ExecuteQueryOnGraph(query, graph, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? std::move(result).value() : Table();
}

// Table::operator== is bag equality; the partitioned matcher promises
// more — identical row order — so compare rows elementwise.
void ExpectRowsIdentical(const Table& serial, const Table& parallel,
                         const std::string& context) {
  ASSERT_EQ(serial.rows().size(), parallel.rows().size()) << context;
  for (size_t i = 0; i < serial.rows().size(); ++i) {
    EXPECT_EQ(serial.rows()[i], parallel.rows()[i])
        << context << " row " << i;
  }
}

TEST(MatcherParallelTest, BitIdenticalAcrossThreadsAndMorselSizes) {
  for (uint32_t seed : {1u, 2u, 3u}) {
    PropertyGraph graph = RandomGraph(seed, /*num_nodes=*/120,
                                      /*num_rels=*/240);
    for (const char* text : kQueries) {
      auto parsed = ParseCypherQuery(text);
      ASSERT_TRUE(parsed.ok()) << parsed.status() << " in " << text;
      Table serial = RunQuery(*parsed, graph, nullptr);
      for (int threads : {2, 4, 8}) {
        ThreadPool pool(threads);
        for (size_t morsel : {size_t{1}, size_t{7}, size_t{64}}) {
          MatchParallelism par;
          par.pool = &pool;
          par.min_seeds = 1;  // Partition even tiny domains.
          par.morsel_size = morsel;
          Table parallel = RunQuery(*parsed, graph, &par);
          ExpectRowsIdentical(
              serial, parallel,
              std::string(text) + " seed=" + std::to_string(seed) +
                  " threads=" + std::to_string(threads) +
                  " morsel=" + std::to_string(morsel));
        }
      }
    }
  }
}

TEST(MatcherParallelTest, PreBoundSeedVariableStaysSerial) {
  // A MATCH whose first pattern starts from an already-bound variable
  // cannot be partitioned; the spec must be ignored, not mis-applied.
  PropertyGraph graph = RandomGraph(7, 60, 120);
  auto parsed = ParseCypherQuery(
      "MATCH (a:A) MATCH (a)-[r:R]->(b) RETURN a, b");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Table serial = RunQuery(*parsed, graph, nullptr);
  ThreadPool pool(4);
  MatchParallelism par;
  par.pool = &pool;
  par.min_seeds = 1;
  par.morsel_size = 4;
  Table parallel = RunQuery(*parsed, graph, &par);
  ExpectRowsIdentical(serial, parallel, "pre-bound second MATCH");
}

TEST(MatcherParallelTest, MinSeedsThresholdKeepsSmallScansSerial) {
  // Below the threshold no morsels are cut; results are identical either
  // way, and the spec's counter stays untouched.
  PropertyGraph graph = RandomGraph(9, 40, 80);
  auto parsed = ParseCypherQuery("MATCH (a:A)-[r]->(b) RETURN a, b");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  Table serial = RunQuery(*parsed, graph, nullptr);
  ThreadPool pool(2);
  Counter partitions;
  MatchParallelism par;
  par.pool = &pool;
  par.min_seeds = 1'000'000;
  par.partitions = &partitions;
  Table parallel = RunQuery(*parsed, graph, &par);
  ExpectRowsIdentical(serial, parallel, "min_seeds gate");
  EXPECT_EQ(partitions.value(), 0);
}

TEST(MatcherParallelTest, PartitionMetricsAreRecorded) {
  PropertyGraph graph = RandomGraph(11, 100, 150);
  auto parsed = ParseCypherQuery("MATCH (a:A)-[r]->(b) RETURN a, b");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ThreadPool pool(4);
  Counter partitions;
  Histogram seeds;
  MatchParallelism par;
  par.pool = &pool;
  par.min_seeds = 1;
  par.morsel_size = 8;
  par.partitions = &partitions;
  par.seed_candidates = &seeds;
  (void)RunQuery(*parsed, graph, &par);
  EXPECT_GT(partitions.value(), 0);
  EXPECT_EQ(seeds.count(), 1);
  EXPECT_GT(seeds.sum(), 0);
}

// ---------------------------------------------------------------------------
// Engine-level equivalence: EngineOptions::match_threads end to end.
// ---------------------------------------------------------------------------

Timestamp T(int64_t minutes) {
  return Timestamp::FromMillis(minutes * 60'000);
}

TEST(MatcherParallelTest, EngineWithMatchThreadsMatchesSerialEngine) {
  std::mt19937 rng(123);
  // Ingest a stream of small random graphs, then compare the full
  // delivered timeline of a pattern-heavy query fleet.
  std::vector<std::pair<int64_t, PropertyGraph>> events;
  int64_t minute = 0;
  for (int e = 0; e < 40; ++e) {
    minute += static_cast<int64_t>(rng() % 3);
    events.emplace_back(minute,
                        RandomGraph(static_cast<uint32_t>(100 + e), 20, 30));
  }
  const std::vector<std::string> queries = {
      "REGISTER QUERY chains STARTING AT '1970-01-01T00:05' { "
      "MATCH (a:A)-[r:R]->(b) WITHIN PT10M "
      "EMIT a.v AS av, b.v AS bv SNAPSHOT EVERY PT5M }",
      "REGISTER QUERY stars STARTING AT '1970-01-01T00:05' { "
      "MATCH (a)-[:R]->(b)-[:S]->(c) WITHIN PT15M "
      "EMIT a.v AS x, c.v AS z SNAPSHOT EVERY PT5M }",
  };

  auto run = [&](int match_threads, int eval_threads) {
    EngineOptions options;
    options.eval_threads = eval_threads;
    options.match_threads = match_threads;
    options.match_min_seeds = 1;  // Exercise partitioning on tiny windows.
    options.match_morsel_size = 4;
    ContinuousEngine engine(options);
    CollectingSink sink;
    engine.AddSink(&sink);
    for (const std::string& text : queries) {
      EXPECT_TRUE(engine.RegisterText(text).ok());
    }
    for (const auto& [min, graph] : events) {
      EXPECT_TRUE(engine.Ingest(graph, T(min)).ok());
    }
    EXPECT_TRUE(engine.AdvanceTo(T(minute + 20)).ok());
    std::vector<std::pair<std::string, TimeVaryingTable>> out;
    out.emplace_back("chains", sink.ResultsFor("chains"));
    out.emplace_back("stars", sink.ResultsFor("stars"));
    return out;
  };

  auto serial = run(/*match_threads=*/1, /*eval_threads=*/1);
  // Intra-query alone, and combined with inter-query parallelism (the
  // nested SubmitBatch-from-worker path).
  for (auto [mt, et] : {std::pair<int, int>{MatchThreadsFromEnv(4), 1},
                        std::pair<int, int>{MatchThreadsFromEnv(4),
                                            EvalThreadsFromEnv(4)}}) {
    auto parallel = run(mt, et);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      const TimeVaryingTable& s = serial[q].second;
      const TimeVaryingTable& p = parallel[q].second;
      ASSERT_EQ(s.size(), p.size()) << serial[q].first;
      for (size_t i = 0; i < s.entries().size(); ++i) {
        EXPECT_EQ(s.entries()[i].window, p.entries()[i].window)
            << serial[q].first << " entry " << i;
        ExpectRowsIdentical(s.entries()[i].table, p.entries()[i].table,
                            serial[q].first + " entry " + std::to_string(i));
      }
    }
  }
}

TEST(MatcherParallelTest, EngineExportsMatchPartitionMetrics) {
  EngineOptions options;
  options.match_threads = 4;
  options.match_min_seeds = 1;
  options.match_morsel_size = 2;
  // Force the full-execution path: delta matching would serve this
  // single-pattern EMIT query from its index and never fan out morsels.
  options.delta_matching = false;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY q STARTING AT '1970-01-01T00:05' { "
                      "MATCH (a:A)-[r:R]->(b) WITHIN PT10M "
                      "EMIT a.v AS v SNAPSHOT EVERY PT5M }")
                  .ok());
  ASSERT_TRUE(engine.Ingest(RandomGraph(42, 30, 60), T(2)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(6)).ok());
  EXPECT_GT(engine.metrics()
                .CounterFor("seraph_match_partitions_total",
                            {{"query", "q"}})
                ->value(),
            0);
  EXPECT_EQ(engine.metrics()
                .HistogramFor("seraph_match_seed_candidates",
                              {{"query", "q"}})
                ->count(),
            1);
}

// The cancellation token is *shared* across morsel workers (the context
// copy keeps it, unlike the parallelism spec): an expired deadline
// aborts the whole parallel match with kDeadlineExceeded at every
// thread count, not just the serial path.
TEST(MatcherParallelTest, ExpiredTokenAbortsAllMorselWorkers) {
  PropertyGraph graph = RandomGraph(/*seed=*/1, /*num_nodes=*/120,
                                    /*num_rels=*/240);
  auto parsed = ParseCypherQuery("MATCH (a:A)-[r1]->(b), (b)-[r2]->(c) "
                                 "RETURN a, b, c");
  ASSERT_TRUE(parsed.ok());
  ManualClock clock(/*now_micros=*/1'000'000);
  CancellationToken token(&clock, /*deadline_micros=*/999'999);
  ThreadPool pool(4);
  MatchParallelism par;
  par.pool = &pool;
  par.min_seeds = 1;
  par.morsel_size = 7;
  ExecutionOptions options;
  options.match_parallelism = &par;
  options.cancellation = &token;
  auto result = ExecuteQueryOnGraph(*parsed, graph, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

}  // namespace
}  // namespace seraph
