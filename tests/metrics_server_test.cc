// The HTTP observability endpoint (src/server/metrics_server.h): a live
// engine scraped over a real loopback socket — /metrics carries the
// emit-latency buckets and lag gauges, /healthz answers, /queries
// reflects engine state (including a budget-disabled query), and unknown
// paths 404.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <mutex>
#include <string>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "server/metrics_server.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id) {
  return GraphBuilder()
      .Node(id, {"X"}, {{"id", Value::Int(id)}})
      .Build();
}

// A blocking HTTP/1.0-style GET against 127.0.0.1:<port>: send one
// request, read until the server closes (it serves one response per
// connection). Returns the raw response (status line + headers + body).
std::string HttpGet(int port, const std::string& path) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

// /metrics serves the live registry (emit-latency buckets, lag gauges),
// /healthz is a liveness probe, and unknown paths 404 — all over a real
// socket against an ephemeral port.
TEST(MetricsServerTest, MetricsAndHealthOverLoopback) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY q STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:X) WITHIN PT10M EMIT n.id EVERY PT5M }")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());

  MetricsServer::Options options;
  options.port = 0;  // Ephemeral.
  options.registry = &engine.metrics();
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  ASSERT_TRUE(server.running());

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  // The emit-latency histogram made it through with native buckets...
  EXPECT_NE(metrics.find("# TYPE seraph_emit_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("seraph_emit_latency_micros_bucket{query=\"q\",le="),
            std::string::npos);
  EXPECT_NE(
      metrics.find("seraph_emit_latency_micros_bucket{query=\"q\",le=\"+Inf\"} 1"),
      std::string::npos);
  // ...alongside the event-time lag surface.
  EXPECT_NE(metrics.find("seraph_stream_watermark_millis{stream=\"<default>\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("seraph_stream_lag_millis{stream=\"<default>\"}"),
            std::string::npos);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // A query string is stripped before routing (Prometheus scrapes may
  // append one).
  const std::string with_query = HttpGet(server.port(), "/healthz?verbose=1");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);

  EXPECT_GE(server.requests_served(), 4);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

// /queries serves the published engine snapshot; a query disabled by the
// error budget shows up as "disabled": true with its failure count.
TEST(MetricsServerTest, QueriesEndpointReflectsDisabledQuery) {
  EngineOptions engine_options;
  engine_options.query_error_budget = 2;
  ContinuousEngine engine(engine_options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY healthy STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:X) WITHIN PT10M EMIT n.id EVERY PT5M }")
                  .ok());
  // Poison: dividing by zero fails while the element is in the window;
  // two consecutive failures exhaust the budget and disable the query.
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY flaky STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:X) WITHIN PT12M EMIT n.id / 0 EVERY PT5M }")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  ASSERT_TRUE(engine.QueryDisabled("flaky"));

  // The run loop's contract: refresh the JSON at a quiescent point and
  // publish it to the server through a mutex-guarded snapshot.
  std::mutex json_mutex;
  std::string published = QueriesStatusJson(engine);
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &engine.metrics();
  options.queries_json = [&]() -> std::string {
    std::lock_guard<std::mutex> lock(json_mutex);
    return published;
  };
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string response = HttpGet(server.port(), "/queries");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"healthy\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"name\":\"flaky\""), std::string::npos);
  EXPECT_NE(response.find("\"disabled\":true"), std::string::npos);
  EXPECT_NE(response.find("\"disabled\":false"), std::string::npos);
  EXPECT_NE(response.find("\"eval_failures\":2"), std::string::npos);
  EXPECT_NE(response.find("\"last_error\""), std::string::npos);

  // Reviving the query and republishing flips the flag live.
  ASSERT_TRUE(engine.ReviveQuery("flaky").ok());
  {
    std::lock_guard<std::mutex> lock(json_mutex);
    published = QueriesStatusJson(engine);
  }
  const std::string revived = HttpGet(server.port(), "/queries");
  EXPECT_EQ(revived.find("\"disabled\":true"), std::string::npos) << revived;
}

// Regression: the serve loop handles one client at a time, so a client
// that connects and then sends nothing used to wedge every subsequent
// scraper behind a blocking recv. With the per-connection IO deadline
// the stalled connection is abandoned, counted, and the next real
// request is served.
TEST(MetricsServerTest, SlowClientCannotWedgeTheServeLoop) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  options.io_timeout_millis = 100;  // Short: the test waits this out.
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Connect-and-hang: open the socket, send nothing, keep it open.
  int hang_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(hang_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(hang_fd, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)),
            0);

  // A real scraper right behind it must still get through: the server
  // abandons the stalled connection at the deadline and moves on.
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  EXPECT_GE(server.connections_timed_out(), 1);

  close(hang_fd);
  server.Stop();
}

// Without a queries_json callback the endpoint degrades to an empty
// array rather than failing.
TEST(MetricsServerTest, QueriesDefaultsToEmptyArray) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = HttpGet(server.port(), "/queries");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("[]"), std::string::npos);
}

}  // namespace
}  // namespace seraph
