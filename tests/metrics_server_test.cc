// The HTTP serving front-end (src/server/metrics_server.h): a live
// engine scraped over a real loopback socket — /metrics carries the
// emit-latency buckets and lag gauges, /healthz answers, /queries
// reflects engine state (including a budget-disabled query), unknown
// paths 404 — plus the poll()-driven multi-connection loop: concurrent
// clients, per-connection IO deadlines, registered POST handlers, and
// long-poll parking.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>

#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "server/metrics_server.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id) {
  return GraphBuilder()
      .Node(id, {"X"}, {{"id", Value::Int(id)}})
      .Build();
}

int Connect(int port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Reads until the server closes (one response per connection).
std::string RecvAll(int fd) {
  std::string response;
  char buffer[4096];
  for (;;) {
    ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  return response;
}

// A blocking request against 127.0.0.1:<port>: send, read until close.
// Returns the raw response (status line + headers + body).
std::string HttpRequestRaw(int port, const std::string& method,
                           const std::string& path, const std::string& body) {
  int fd = Connect(port);
  if (fd < 0) return "";
  std::string request = method + " " + path + " HTTP/1.0\r\nHost: 127.0.0.1\r\n";
  if (!body.empty() || method == "POST") {
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  request += "\r\n" + body;
  SendAll(fd, request);
  const std::string response = RecvAll(fd);
  close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& path) {
  return HttpRequestRaw(port, "GET", path, "");
}

// Polls `predicate` until it holds or ~5s pass (the serve loop works in
// ticks, so counters and parked replies land asynchronously).
bool WaitFor(const std::function<bool()>& predicate) {
  for (int i = 0; i < 500; ++i) {
    if (predicate()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return predicate();
}

// /metrics serves the live registry (emit-latency buckets, lag gauges),
// /healthz is a liveness probe, and unknown paths 404 — all over a real
// socket against an ephemeral port.
TEST(MetricsServerTest, MetricsAndHealthOverLoopback) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY q STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:X) WITHIN PT10M EMIT n.id EVERY PT5M }")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());

  MetricsServer::Options options;
  options.port = 0;  // Ephemeral.
  options.registry = &engine.metrics();
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);
  ASSERT_TRUE(server.running());

  const std::string metrics = HttpGet(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  // The emit-latency histogram made it through with native buckets...
  EXPECT_NE(metrics.find("# TYPE seraph_emit_latency_micros histogram"),
            std::string::npos);
  EXPECT_NE(metrics.find("seraph_emit_latency_micros_bucket{query=\"q\",le="),
            std::string::npos);
  EXPECT_NE(
      metrics.find("seraph_emit_latency_micros_bucket{query=\"q\",le=\"+Inf\"} 1"),
      std::string::npos);
  // ...alongside the event-time lag surface.
  EXPECT_NE(metrics.find("seraph_stream_watermark_millis{stream=\"<default>\"}"),
            std::string::npos);
  EXPECT_NE(metrics.find("seraph_stream_lag_millis{stream=\"<default>\"}"),
            std::string::npos);

  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string missing = HttpGet(server.port(), "/nope");
  EXPECT_NE(missing.find("404"), std::string::npos);

  // A query string is stripped before routing (Prometheus scrapes may
  // append one).
  const std::string with_query = HttpGet(server.port(), "/healthz?verbose=1");
  EXPECT_NE(with_query.find("200 OK"), std::string::npos);

  EXPECT_GE(server.requests_served(), 4);
  server.Stop();
  EXPECT_FALSE(server.running());
  server.Stop();  // Idempotent.
}

// /queries serves the published engine snapshot; a query disabled by the
// error budget shows up as "disabled": true with its failure count.
TEST(MetricsServerTest, QueriesEndpointReflectsDisabledQuery) {
  EngineOptions engine_options;
  engine_options.query_error_budget = 2;
  ContinuousEngine engine(engine_options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY healthy STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:X) WITHIN PT10M EMIT n.id EVERY PT5M }")
                  .ok());
  // Poison: dividing by zero fails while the element is in the window;
  // two consecutive failures exhaust the budget and disable the query.
  ASSERT_TRUE(engine
                  .RegisterText(
                      "REGISTER QUERY flaky STARTING AT '1970-01-01T00:05' "
                      "{ MATCH (n:X) WITHIN PT12M EMIT n.id / 0 EVERY PT5M }")
                  .ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  ASSERT_TRUE(engine.QueryDisabled("flaky"));

  // The run loop's contract: refresh the JSON at a quiescent point and
  // publish it to the server through a mutex-guarded snapshot.
  std::mutex json_mutex;
  std::string published = QueriesStatusJson(engine);
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &engine.metrics();
  options.queries_json = [&]() -> std::string {
    std::lock_guard<std::mutex> lock(json_mutex);
    return published;
  };
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  const std::string response = HttpGet(server.port(), "/queries");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"name\":\"healthy\""), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"name\":\"flaky\""), std::string::npos);
  EXPECT_NE(response.find("\"disabled\":true"), std::string::npos);
  EXPECT_NE(response.find("\"disabled\":false"), std::string::npos);
  EXPECT_NE(response.find("\"eval_failures\":2"), std::string::npos);
  EXPECT_NE(response.find("\"last_error\""), std::string::npos);

  // Reviving the query and republishing flips the flag live.
  ASSERT_TRUE(engine.ReviveQuery("flaky").ok());
  {
    std::lock_guard<std::mutex> lock(json_mutex);
    published = QueriesStatusJson(engine);
  }
  const std::string revived = HttpGet(server.port(), "/queries");
  EXPECT_EQ(revived.find("\"disabled\":true"), std::string::npos) << revived;
}

// Regression: a client that connects and then sends nothing must never
// wedge other scrapers. With the poll() loop the hung connection does
// not even delay them — the real request completes while the stalled one
// is still inside its IO deadline, and the deadline then abandons it.
TEST(MetricsServerTest, SlowClientCannotWedgeTheServeLoop) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  options.io_timeout_millis = 100;  // Short: the test waits this out.
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  // Connect-and-hang: open the socket, send nothing, keep it open.
  int hang_fd = Connect(server.port());
  ASSERT_GE(hang_fd, 0);

  // A real scraper right behind it gets through immediately — the
  // stalled connection no longer blocks the loop at all.
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos) << health;
  // The stalled connection is abandoned once its own deadline passes.
  EXPECT_TRUE(WaitFor([&] { return server.connections_timed_out() >= 1; }))
      << "stalled connection was never abandoned";

  close(hang_fd);
  server.Stop();
}

// The satellite regression the poll() rewrite exists for: two clients
// held open CONCURRENTLY, both served. Client A sends half a request and
// stalls mid-header; client B's full request completes while A is still
// open; then A finishes its request and is served too.
TEST(MetricsServerTest, TwoConcurrentClientsAreBothServed) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());

  int slow_fd = Connect(server.port());
  ASSERT_GE(slow_fd, 0);
  ASSERT_TRUE(SendAll(slow_fd, "GET /heal"));  // Mid-header stall.

  // B completes while A's request is still unfinished.
  const std::string fast = HttpGet(server.port(), "/healthz");
  EXPECT_NE(fast.find("200 OK"), std::string::npos) << fast;

  // A wakes up, finishes the request, and is served on the same socket.
  ASSERT_TRUE(SendAll(slow_fd, "thz HTTP/1.0\r\nHost: x\r\n\r\n"));
  const std::string slow = RecvAll(slow_fd);
  close(slow_fd);
  EXPECT_NE(slow.find("200 OK"), std::string::npos) << slow;
  EXPECT_NE(slow.find("ok"), std::string::npos);
  EXPECT_GE(server.requests_served(), 2);
  EXPECT_EQ(server.connections_timed_out(), 0);
  server.Stop();
}

// Registered handlers: a POST route receives the body (framed by
// Content-Length), replies through HttpReply, and takes precedence over
// the built-ins; malformed request heads are rejected with 400.
TEST(MetricsServerTest, RegisteredPostHandlerReceivesBody) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  MetricsServer server(options);
  server.Handle("POST", "/echo", [](const HttpRequest& request) {
    HttpReply reply;
    reply.content_type = "application/json";
    reply.body = "{\"method\":\"" + request.method + "\",\"path\":\"" +
                 request.path + "\",\"query\":\"" + request.query +
                 "\",\"body\":\"" + request.body + "\"}";
    return reply;
  });
  ASSERT_TRUE(server.Start().ok());

  const std::string response =
      HttpRequestRaw(server.port(), "POST", "/echo/sub?x=1", "hello body");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\"path\":\"/echo/sub\""), std::string::npos);
  EXPECT_NE(response.find("\"query\":\"x=1\""), std::string::npos);
  EXPECT_NE(response.find("\"body\":\"hello body\""), std::string::npos);

  // GET on the same prefix does not match the POST route → built-in 404.
  const std::string wrong_method = HttpGet(server.port(), "/echo");
  EXPECT_NE(wrong_method.find("404"), std::string::npos) << wrong_method;

  // A request line that is not HTTP at all → 400.
  int fd = Connect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "garbage\r\n\r\n"));
  const std::string malformed = RecvAll(fd);
  close(fd);
  EXPECT_NE(malformed.find("400"), std::string::npos) << malformed;
  server.Stop();
}

// Long polling: a handler returning std::nullopt parks the connection;
// the serve loop re-invokes it every tick, and the reply goes out as
// soon as the handler produces one — while other clients keep being
// served in between.
TEST(MetricsServerTest, LongPollParksUntilHandlerReplies) {
  MetricsRegistry registry;
  std::atomic<bool> ready{false};
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  options.long_poll_timeout_millis = 10'000;
  MetricsServer server(options);
  server.Handle("GET", "/wait",
                [&](const HttpRequest&) -> std::optional<HttpReply> {
                  if (!ready.load()) return std::nullopt;
                  HttpReply reply;
                  reply.body = "data arrived\n";
                  return reply;
                });
  ASSERT_TRUE(server.Start().ok());

  int fd = Connect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, "GET /wait HTTP/1.0\r\nHost: x\r\n\r\n"));

  // While the poller is parked, an unrelated client is still served.
  const std::string health = HttpGet(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  ready.store(true);  // "Data" shows up; the parked poller is woken.
  const std::string response = RecvAll(fd);
  close(fd);
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("data arrived"), std::string::npos);
  server.Stop();
}

// A parked request whose data never arrives is answered 204 No Content
// once the long-poll budget expires (clients re-poll on 204).
TEST(MetricsServerTest, LongPollExpiresWithNoContent) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  options.long_poll_timeout_millis = 150;  // Short: the test waits it out.
  MetricsServer server(options);
  server.Handle("GET", "/wait",
                [](const HttpRequest&) -> std::optional<HttpReply> {
                  return std::nullopt;  // Never ready.
                });
  ASSERT_TRUE(server.Start().ok());
  const std::string response = HttpGet(server.port(), "/wait");
  EXPECT_NE(response.find("204"), std::string::npos) << response;
  server.Stop();
}

// Without a queries_json callback the endpoint degrades to an empty
// array rather than failing.
TEST(MetricsServerTest, QueriesDefaultsToEmptyArray) {
  MetricsRegistry registry;
  MetricsServer::Options options;
  options.port = 0;
  options.registry = &registry;
  MetricsServer server(options);
  ASSERT_TRUE(server.Start().ok());
  const std::string response = HttpGet(server.port(), "/queries");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("[]"), std::string::npos);
}

}  // namespace
}  // namespace seraph
