// The emit-latency SLO layer (docs/INTERNALS.md, "Latency accounting &
// lag"): arrival stamping through queue → driver → engine, deterministic
// latency histograms under an injected ManualClock, the per-stage
// breakdown, watermark/lag gauges across out-of-order input, and the
// stamping-off ablation.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/stream_driver.h"
#include "stream/event_queue.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id) {
  return GraphBuilder()
      .Node(id, {"X"}, {{"id", Value::Int(id)}})
      .Build();
}

std::string CountQuery(const char* name) {
  std::string q = "REGISTER QUERY ";
  q += name;
  q += " STARTING AT '1970-01-01T00:05' "
       "{ MATCH (n:X) WITHIN PT10M EMIT n.id SNAPSHOT EVERY PT5M }";
  return q;
}

// Engine-side stamping: with a ManualClock, the recorded ingest→emit
// latencies are exact.
TEST(EmitLatencyTest, DeterministicLatencyUnderManualClock) {
  ManualClock clock(1'000);
  EngineOptions options;
  options.clock = &clock;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());

  // Two elements stamped 1000 and 2000 on the manual clock.
  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  clock.Set(2'000);
  ASSERT_TRUE(engine.Ingest(Item(2), T(7)).ok());
  // Delivery happens at clock 10'000: latencies are exactly 9000 and
  // 8000 us.
  clock.Set(10'000);
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());

  const Histogram* h = engine.metrics().FindHistogram(
      "seraph_emit_latency_micros", {{"query", "q"}});
  ASSERT_NE(h, nullptr);
  HistogramSnapshot snapshot = h->Snapshot();
  EXPECT_EQ(snapshot.count, 2);
  EXPECT_EQ(snapshot.sum, 9'000 + 8'000);
  EXPECT_EQ(snapshot.max, 9'000);
  EXPECT_EQ(snapshot.min, 8'000);
  // The fleet-wide histogram saw the same samples.
  const Histogram* fleet =
      engine.metrics().FindHistogram("seraph_engine_emit_latency_micros");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->Snapshot().count, 2);
}

// Each element's latency is charged exactly once, at the first delivered
// instant covering it.
TEST(EmitLatencyTest, ElementsChargedOncePerQuery) {
  ManualClock clock(1'000);
  EngineOptions options;
  options.clock = &clock;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());

  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  clock.Set(5'000);
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());  // ET 5, 10: covers @6.
  const Histogram* h = engine.metrics().FindHistogram(
      "seraph_emit_latency_micros", {{"query", "q"}});
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->Snapshot().count, 1);
  EXPECT_EQ(h->Snapshot().sum, 4'000);

  // Further evaluations re-cover the same element (the window still
  // contains it) but record nothing new.
  clock.Set(50'000);
  ASSERT_TRUE(engine.AdvanceTo(T(15)).ok());
  EXPECT_EQ(h->Snapshot().count, 1);

  // A fresh element is charged at its own covering instant.
  clock.Set(60'000);
  ASSERT_TRUE(engine.Ingest(Item(2), T(19)).ok());
  clock.Set(61'000);
  ASSERT_TRUE(engine.AdvanceTo(T(20)).ok());
  EXPECT_EQ(h->Snapshot().count, 2);
  EXPECT_EQ(h->Snapshot().sum, 4'000 + 1'000);
}

// The queue-wait stage is (evaluation start − arrival) on the same
// clock; the evaluation-side stages record once per delivered emit.
TEST(EmitLatencyTest, StageBreakdownRecorded) {
  ManualClock clock(1'000);
  EngineOptions options;
  options.clock = &clock;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  clock.Set(3'000);
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());  // ET 5 and 10.

  auto stage = [&](const char* name) {
    return engine.metrics().FindHistogram(
        "seraph_emit_stage_micros", {{"query", "q"}, {"stage", name}});
  };
  ASSERT_NE(stage("queue"), nullptr);
  // One queue-wait sample (one element), exactly 2000 us: ingested at
  // 1000, evaluations all started at clock 3000.
  EXPECT_EQ(stage("queue")->Snapshot().count, 1);
  EXPECT_EQ(stage("queue")->Snapshot().sum, 2'000);
  // Two delivered evaluations → two samples of each per-emit stage.
  for (const char* name : {"window", "match", "deliver"}) {
    ASSERT_NE(stage(name), nullptr) << name;
    EXPECT_EQ(stage(name)->Snapshot().count, 2) << name;
  }
}

// With latency_stamping off, no samples are recorded anywhere (the
// overhead ablation arm).
TEST(EmitLatencyTest, StampingDisabledRecordsNothing) {
  ManualClock clock(1'000);
  EngineOptions options;
  options.clock = &clock;
  options.latency_stamping = false;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  clock.Set(9'000);
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  const Histogram* h = engine.metrics().FindHistogram(
      "seraph_emit_latency_micros", {{"query", "q"}});
  ASSERT_NE(h, nullptr);  // The series exists (registered eagerly)...
  EXPECT_EQ(h->Snapshot().count, 0);  // ...but never sees a sample.
  EXPECT_EQ(engine.metrics()
                .FindHistogram("seraph_engine_emit_latency_micros")
                ->Snapshot()
                .count,
            0);
}

// End to end through EventQueue + StreamDriver: the Produce stamp rides
// through the driver (and the reorder buffer) into the emit latency.
TEST(EmitLatencyTest, ArrivalStampRidesThroughDriver) {
  ManualClock clock(10'000);
  EventQueue queue;
  queue.SetClock(&clock);
  EngineOptions options;
  options.clock = &clock;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());

  StreamDriver::Options driver_options;
  driver_options.allowed_lateness = Duration::FromMinutes(2);
  StreamDriver driver(&queue, &engine, driver_options);

  // Each element is stamped at Produce time; with allowed_lateness set,
  // all pass through the driver's reorder buffer before delivery. The
  // third element pushes the delivered horizon past the ET 5 grid point
  // so the first two get covered (and charged) there.
  ASSERT_TRUE(queue.Produce(Item(1), T(3)).ok());
  clock.Set(20'000);
  ASSERT_TRUE(queue.Produce(Item(2), T(4)).ok());
  clock.Set(25'000);
  ASSERT_TRUE(queue.Produce(Item(3), T(6)).ok());
  clock.Set(30'000);
  auto pumped = driver.PumpAll();
  ASSERT_TRUE(pumped.ok()) << pumped.status();
  clock.Set(100'000);
  ASSERT_TRUE(driver.Finish().ok());

  const Histogram* h = engine.metrics().FindHistogram(
      "seraph_emit_latency_micros", {{"query", "q"}});
  ASSERT_NE(h, nullptr);
  HistogramSnapshot snapshot = h->Snapshot();
  // The ET 5 evaluation ran during Finish (clock 100000) and charged the
  // two covered elements: latencies 100000-10000 and 100000-20000. The
  // element at @6 stays uncharged until a later instant covers it.
  EXPECT_EQ(snapshot.count, 2);
  EXPECT_EQ(snapshot.sum, 90'000 + 80'000);
}

// Watermark and lag gauges track event time deterministically, including
// under out-of-order arrival.
TEST(EmitLatencyTest, WatermarkAndLagGauges) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());

  ASSERT_TRUE(engine.Ingest(Item(1), T(10)).ok());
  const Gauge* watermark = engine.metrics().FindGauge(
      "seraph_stream_watermark_millis", {{"stream", "<default>"}});
  const Gauge* lag = engine.metrics().FindGauge("seraph_stream_lag_millis",
                                          {{"stream", "<default>"}});
  const Gauge* lag_max = engine.metrics().FindGauge(
      "seraph_stream_lag_max_millis", {{"stream", "<default>"}});
  ASSERT_NE(watermark, nullptr);
  ASSERT_NE(lag, nullptr);
  ASSERT_NE(lag_max, nullptr);
  EXPECT_EQ(watermark->value(), T(10).millis());
  // Clock not started: the whole watermark is lag.
  EXPECT_EQ(lag->value(), T(10).millis());

  // Advancing the clock to the watermark clears the lag.
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  EXPECT_EQ(lag->value(), 0);
  EXPECT_EQ(engine.metrics().FindGauge("seraph_engine_clock_millis")->value(),
            T(10).millis());
  EXPECT_EQ(lag_max->value(), T(10).millis());  // The running max stays.

  // New elements ahead of the clock re-open the lag; the max ratchets.
  ASSERT_TRUE(engine.Ingest(Item(2), T(25)).ok());
  EXPECT_EQ(watermark->value(), T(25).millis());
  EXPECT_EQ(lag->value(), T(15).millis());
  EXPECT_EQ(lag_max->value(), T(15).millis());
  ASSERT_TRUE(engine.AdvanceTo(T(25)).ok());
  EXPECT_EQ(lag->value(), 0);
  EXPECT_EQ(lag_max->value(), T(15).millis());
}

// The p999 percentile and the native bucket exposition surface through a
// real engine run.
TEST(EmitLatencyTest, PrometheusBucketsExposed) {
  ManualClock clock(1'000);
  EngineOptions options;
  options.clock = &clock;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(CountQuery("q")).ok());
  ASSERT_TRUE(engine.Ingest(Item(1), T(6)).ok());
  clock.Set(9'000);
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());

  const std::string text = engine.metrics().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE seraph_emit_latency_micros histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("seraph_emit_latency_micros_bucket{query=\"q\",le="),
            std::string::npos);
  EXPECT_NE(
      text.find("seraph_emit_latency_micros{query=\"q\",quantile=\"0.999\"}"),
      std::string::npos);
  EXPECT_NE(text.find(
                "seraph_emit_latency_micros_bucket{query=\"q\",le=\"+Inf\"} "
                "1"),
            std::string::npos);
}

// Replayed (restored) elements carry no arrival stamp and are never
// charged: latency is a processing-time concern of the current life.
TEST(EmitLatencyTest, RestoreSkipsCheckpointedElements) {
  ManualClock clock(1'000);
  EngineOptions options;
  options.clock = &clock;

  EngineCheckpoint image;
  {
    ContinuousEngine first(options);
    CollectingSink sink;
    first.AddSink(&sink);
    ASSERT_TRUE(first.RegisterText(CountQuery("q")).ok());
    ASSERT_TRUE(first.Ingest(Item(1), T(6)).ok());
    ASSERT_TRUE(first.AdvanceTo(T(10)).ok());
    image = first.CaptureCheckpoint();
  }

  ContinuousEngine restored(options);
  CollectingSink sink;
  restored.AddSink(&sink);
  ASSERT_TRUE(restored.RegisterText(CountQuery("q")).ok());
  ASSERT_TRUE(restored.RestoreFrom(image).ok());
  clock.Set(500'000);
  ASSERT_TRUE(restored.Ingest(Item(2), T(19)).ok());
  clock.Set(501'000);
  ASSERT_TRUE(restored.AdvanceTo(T(20)).ok());
  const Histogram* h = restored.metrics().FindHistogram(
      "seraph_emit_latency_micros", {{"query", "q"}});
  ASSERT_NE(h, nullptr);
  // Only the post-restore element was charged (1000 us), never the
  // restored prefix.
  EXPECT_EQ(h->Snapshot().count, 1);
  EXPECT_EQ(h->Snapshot().sum, 1'000);
}

}  // namespace
}  // namespace seraph
