// Emit sinks: printing, counting, CSV export, and the reduce() expression
// (exercised through a full continuous query).
#include <gtest/gtest.h>

#include <sstream>

#include "cypher/eval.h"
#include "cypher/executor.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"
#include "seraph/continuous_engine.h"
#include "seraph/sinks.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id, std::string name) {
  return GraphBuilder()
      .Node(id, {"X"},
            {{"id", Value::Int(id)}, {"name", Value::String(std::move(name))}})
      .Build();
}

class SinksFixture : public ::testing::Test {
 protected:
  void Run(EmitSink* sink) {
    ContinuousEngine engine;
    engine.AddSink(sink);
    ASSERT_TRUE(engine.RegisterText(R"(
      REGISTER QUERY q STARTING AT '1970-01-01T00:05'
      { MATCH (n:X) WITHIN PT30M EMIT n.id, n.name
        SNAPSHOT EVERY PT5M })")
                    .ok());
    ASSERT_TRUE(engine.Ingest(Item(1, "plain"), T(1)).ok());
    ASSERT_TRUE(engine.Ingest(Item(2, "has,comma \"quoted\""), T(2)).ok());
    ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  }
};

TEST_F(SinksFixture, CountingSinkTotals) {
  CountingSink sink;
  Run(&sink);
  EXPECT_EQ(sink.evaluations(), 2);  // 5 and 10.
  EXPECT_EQ(sink.rows(), 4);         // 2 rows per evaluation (SNAPSHOT).
  sink.Reset();
  EXPECT_EQ(sink.evaluations(), 0);
  EXPECT_EQ(sink.rows(), 0);
}

TEST_F(SinksFixture, PrintingSinkRendersTables) {
  std::ostringstream os;
  PrintingSink sink(&os, {"n.id", "n.name"});
  Run(&sink);
  std::string out = os.str();
  EXPECT_NE(out.find("[q] evaluation at 1970-01-01T00:05"),
            std::string::npos);
  EXPECT_NE(out.find("| n.id |"), std::string::npos);
  EXPECT_NE(out.find("plain"), std::string::npos);
  EXPECT_NE(out.find("win_start"), std::string::npos);
}

TEST_F(SinksFixture, PrintingSinkSkipsEmptyByDefault) {
  std::ostringstream os;
  PrintingSink sink(&os, {"n.id"});
  ContinuousEngine engine;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY empty STARTING AT '1970-01-01T00:05'
    { MATCH (n:Nope) WITHIN PT5M EMIT n.id EVERY PT5M })")
                  .ok());
  ASSERT_TRUE(engine.AdvanceTo(T(10)).ok());
  EXPECT_TRUE(os.str().empty());
}

TEST_F(SinksFixture, CsvSinkEscapesAndAnnotates) {
  std::ostringstream os;
  CsvSink sink(&os, {"n.id", "n.name"});
  Run(&sink);
  std::string out = os.str();
  // Header once.
  EXPECT_EQ(out.find("query,evaluation_time,win_start,win_end,n.id,n.name"),
            0u);
  EXPECT_EQ(out.find("query,", 10), std::string::npos);
  // RFC 4180 quoting of the tricky value.
  EXPECT_NE(out.find("\"has,comma \"\"quoted\"\"\""), std::string::npos);
  // Four data rows (2 rows × 2 evaluations) + header.
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 5);
}

// CollectingSink::ResultAt keeps the *latest* result for a (query,
// timestamp) pair. The old implementation used map::emplace, which
// silently dropped the second delivery — e.g. after Unregister/Register
// of the same query name ResultAt kept serving the stale table.
TEST(CollectingSinkTest, ResultAtKeepsLatestDelivery) {
  CollectingSink sink;
  auto one_row = [](int64_t v) {
    Table t(std::set<std::string>{"v"});
    Record r;
    r.Set("v", Value::Int(v));
    t.Append(std::move(r));
    return t;
  };
  Table one = one_row(1);
  Table two = one_row(2);
  TimeInterval window{T(0), T(5)};
  ASSERT_TRUE(sink.OnResult("q", T(5), {one, window}).ok());
  ASSERT_TRUE(sink.OnResult("q", T(5), {two, window}).ok());
  // The delivery sequence keeps both; the by-time lookup serves the last.
  EXPECT_EQ(sink.ResultsFor("q").size(), 2u);
  auto at = sink.ResultAt("q", T(5));
  ASSERT_TRUE(at.has_value());
  ASSERT_EQ(at->table.size(), 1u);
  EXPECT_EQ(at->table.rows()[0].GetOrNull("v"), Value::Int(2));
}

TEST(ReduceExprTest, FoldsLists) {
  auto eval = [](std::string_view text) {
    auto expr = ParseCypherExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    PropertyGraph g;
    EvalContext ctx(&g, nullptr);
    auto v = (*expr)->Eval(ctx);
    EXPECT_TRUE(v.ok()) << v.status();
    return v.ok() ? v.value() : Value::Null();
  };
  EXPECT_EQ(eval("reduce(acc = 0, x IN [1, 2, 3] | acc + x)"),
            Value::Int(6));
  EXPECT_EQ(eval("reduce(s = '', w IN ['a', 'b'] | s + w)"),
            Value::String("ab"));
  EXPECT_EQ(eval("reduce(acc = 1, x IN [] | acc * x)"), Value::Int(1));
  EXPECT_TRUE(eval("reduce(acc = 0, x IN null | acc)").is_null());
  // Nested locals: inner reduce shadows nothing outside.
  EXPECT_EQ(
      eval("reduce(a = 0, x IN [1, 2] | a + reduce(b = 0, y IN [10] | b + y))"),
      Value::Int(20));
}

TEST(ReduceExprTest, UsableInQueries) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"X"}, {{"xs", Value::MakeList(
                                                    {Value::Int(2),
                                                     Value::Int(5)})}})
                        .Build();
  auto q = ParseCypherQuery(
      "MATCH (n:X) RETURN reduce(acc = 0, x IN n.xs | acc + x) AS total");
  ASSERT_TRUE(q.ok()) << q.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*q, g, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows()[0].GetOrNull("total"), Value::Int(7));
}

}  // namespace
}  // namespace seraph
