// Text serialization round-trips (io/graph_text.h), the reorder buffer,
// and exists() pattern predicates.
#include <gtest/gtest.h>

#include <sstream>

#include "cypher/executor.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"
#include "io/graph_text.h"
#include "stream/reorder_buffer.h"
#include "workloads/bike_sharing.h"

namespace seraph {
namespace {

TEST(GraphTextTest, ValueRoundTrips) {
  std::vector<Value> values = {
      Value::Null(),
      Value::Bool(true),
      Value::Bool(false),
      Value::Int(-42),
      Value::Float(1.5),
      Value::String("plain"),
      Value::String("with|pipe=eq,comma%pct\nnewline"),
      Value::DateTime(Timestamp::Parse("2022-10-14T14:45").value()),
      Value::Dur(Duration::FromMinutes(90)),
  };
  for (const Value& v : values) {
    auto round = io::DecodeValue(io::EncodeValue(v));
    ASSERT_TRUE(round.ok()) << v.ToString() << ": " << round.status();
    EXPECT_EQ(*round, v) << v.ToString();
  }
}

TEST(GraphTextTest, DecodeValueErrors) {
  EXPECT_FALSE(io::DecodeValue("").ok());
  EXPECT_FALSE(io::DecodeValue("x:1").ok());
  EXPECT_FALSE(io::DecodeValue("i:abc").ok());
  EXPECT_FALSE(io::DecodeValue("b:maybe").ok());
  EXPECT_FALSE(io::DecodeValue("s:bad%escape%2").ok());
}

TEST(GraphTextTest, GraphRoundTrips) {
  PropertyGraph g = workloads::BuildRunningExampleMergedGraph();
  auto round = io::DecodeGraph(io::EncodeGraph(g));
  ASSERT_TRUE(round.ok()) << round.status();
  EXPECT_EQ(*round, g);
}

TEST(GraphTextTest, DecodeGraphSkipsCommentsAndBlankLines) {
  auto g = io::DecodeGraph(
      "# a comment\n\nnode|1|A|x=i:1\n  \nnode|2|B\nrel|1|E|1|2\n");
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->num_nodes(), 2u);
  EXPECT_EQ(g->num_relationships(), 1u);
  EXPECT_EQ(g->NodeProperty(NodeId{1}, "x"), Value::Int(1));
}

TEST(GraphTextTest, DecodeGraphErrors) {
  EXPECT_FALSE(io::DecodeGraph("bogus|1").ok());
  EXPECT_FALSE(io::DecodeGraph("node|1").ok());          // Missing labels.
  EXPECT_FALSE(io::DecodeGraph("rel|1|T|1").ok());       // Missing trg.
  EXPECT_FALSE(io::DecodeGraph("node|1|A|broken").ok()); // Bad property.
}

TEST(GraphTextTest, EventLogRoundTrips) {
  std::vector<StreamElement> events;
  for (const auto& event : workloads::BuildRunningExampleStream()) {
    events.push_back(StreamElement{
        std::make_shared<const PropertyGraph>(event.graph),
        event.timestamp});
  }
  std::ostringstream os;
  io::WriteEventLog(events, &os);
  std::istringstream is(os.str());
  auto round = io::ReadEventLog(&is);
  ASSERT_TRUE(round.ok()) << round.status();
  ASSERT_EQ(round->size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ((*round)[i].timestamp, events[i].timestamp);
    EXPECT_EQ(*(*round)[i].graph, *events[i].graph);
  }
}

TEST(GraphTextTest, EventLogRejectsDisorderAndHeaderlessLines) {
  std::istringstream headerless("node|1|A\n");
  EXPECT_FALSE(io::ReadEventLog(&headerless).ok());
  std::istringstream disordered(
      "@ 2022-01-01T01:00\nnode|1|A\n@ 2022-01-01T00:00\nnode|2|A\n");
  EXPECT_FALSE(io::ReadEventLog(&disordered).ok());
}

// ---------------------------------------------------------------------------
// ReorderBuffer
// ---------------------------------------------------------------------------

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

std::shared_ptr<const PropertyGraph> Tiny(int64_t id) {
  return std::make_shared<const PropertyGraph>(
      GraphBuilder().Node(id, {"N"}).Build());
}

TEST(ReorderBufferTest, ReordersWithinLateness) {
  ReorderBuffer buffer(Duration::FromMinutes(5));
  EXPECT_TRUE(buffer.Offer(Tiny(2), T(12)));
  EXPECT_TRUE(buffer.Offer(Tiny(1), T(10)));  // Out of order, tolerated.
  EXPECT_TRUE(buffer.Offer(Tiny(3), T(20)));
  // Watermark = 20 − 5 = 15: elements at 10 and 12 are releasable.
  auto released = buffer.Release();
  ASSERT_EQ(released.size(), 2u);
  EXPECT_EQ(released[0].timestamp, T(10));
  EXPECT_EQ(released[1].timestamp, T(12));
  EXPECT_EQ(buffer.pending(), 1u);
}

TEST(ReorderBufferTest, DropsTooLateElements) {
  ReorderBuffer buffer(Duration::FromMinutes(5));
  EXPECT_TRUE(buffer.Offer(Tiny(1), T(20)));
  EXPECT_FALSE(buffer.Offer(Tiny(2), T(10)));  // Older than watermark 15.
  EXPECT_EQ(buffer.dropped(), 1);
  EXPECT_TRUE(buffer.Offer(Tiny(3), T(16)));   // Within lateness.
}

TEST(ReorderBufferTest, FlushReturnsEverythingInOrder) {
  ReorderBuffer buffer(Duration::FromMinutes(60));
  EXPECT_TRUE(buffer.Offer(Tiny(3), T(30)));
  EXPECT_TRUE(buffer.Offer(Tiny(1), T(10)));
  EXPECT_TRUE(buffer.Offer(Tiny(2), T(20)));
  EXPECT_TRUE(buffer.Release().empty());  // Watermark at −30.
  auto all = buffer.Flush();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].timestamp, T(10));
  EXPECT_EQ(all[2].timestamp, T(30));
  EXPECT_EQ(buffer.pending(), 0u);
}

TEST(ReorderBufferTest, FeedsStreamInOrder) {
  ReorderBuffer buffer(Duration::FromMinutes(5));
  PropertyGraphStream stream;
  std::vector<std::pair<int64_t, int64_t>> arrivals = {
      {1, 12}, {2, 10}, {3, 25}, {4, 22}, {5, 40}};
  for (auto [id, minute] : arrivals) {
    buffer.Offer(Tiny(id), T(minute));
    for (const StreamElement& e : buffer.Release()) {
      ASSERT_TRUE(stream.Append(e.graph, e.timestamp).ok());
    }
  }
  for (const StreamElement& e : buffer.Flush()) {
    ASSERT_TRUE(stream.Append(e.graph, e.timestamp).ok());
  }
  EXPECT_EQ(stream.size(), 5u);
}

TEST(ReorderBufferTest, CapShedOldestSpillsToOverflow) {
  // Lateness 60 min, so nothing is releasable: the pending set grows
  // until the cap, then each newcomer displaces the oldest-timestamped
  // held element into the overflow list (which the driver dead-letters).
  ReorderBuffer buffer(Duration::FromMinutes(60));
  buffer.SetCapacity(2, OverflowPolicy::kShedOldest);
  EXPECT_TRUE(buffer.Offer(Tiny(1), T(10)));
  EXPECT_TRUE(buffer.Offer(Tiny(2), T(12)));
  EXPECT_TRUE(buffer.Offer(Tiny(3), T(11)));  // Displaces T(10).
  EXPECT_EQ(buffer.pending(), 2u);
  EXPECT_EQ(buffer.overflow_dropped(), 1);
  auto spilled = buffer.TakeOverflow();
  ASSERT_EQ(spilled.size(), 1u);
  EXPECT_EQ(spilled[0].timestamp, T(10));
  EXPECT_TRUE(buffer.TakeOverflow().empty());  // Drained exactly once.
  // Late-drop accounting is separate from cap accounting.
  EXPECT_EQ(buffer.dropped(), 0);
}

TEST(ReorderBufferTest, CapRejectRefusesNewcomer) {
  ReorderBuffer buffer(Duration::FromMinutes(60));
  buffer.SetCapacity(2, OverflowPolicy::kReject);
  EXPECT_TRUE(buffer.Offer(Tiny(1), T(10)));
  EXPECT_TRUE(buffer.Offer(Tiny(2), T(12)));
  EXPECT_FALSE(buffer.Offer(Tiny(3), T(30)));  // At cap: refused.
  EXPECT_EQ(buffer.pending(), 2u);
  EXPECT_EQ(buffer.overflow_dropped(), 1);
  EXPECT_TRUE(buffer.TakeOverflow().empty());
  // A refused element still advanced the watermark (30 − 60 < 10, so
  // nothing releases here, but the held elements remain deliverable).
  auto all = buffer.Flush();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].timestamp, T(10));
}

// ---------------------------------------------------------------------------
// exists() pattern predicate
// ---------------------------------------------------------------------------

TEST(ExistsPatternTest, FiltersByNeighborhood) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"P"}, {{"name", Value::String("a")}})
                        .Node(2, {"P"}, {{"name", Value::String("b")}})
                        .Node(3, {"C"})
                        .Rel(1, 1, 3, "OWNS")
                        .Build();
  auto q = ParseCypherQuery(
      "MATCH (p:P) WHERE exists((p)-[:OWNS]->(:C)) RETURN p.name");
  ASSERT_TRUE(q.ok()) << q.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*q, g, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0].GetOrNull("p.name"), Value::String("a"));
}

TEST(ExistsPatternTest, NegatedInWhere) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"P"})
                        .Node(2, {"P"})
                        .Rel(1, 1, 2, "KNOWS")
                        .Build();
  auto q = ParseCypherQuery(
      "MATCH (p:P) WHERE NOT exists((p)-[:KNOWS]->()) RETURN id(p) AS i");
  ASSERT_TRUE(q.ok()) << q.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*q, g, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0].GetOrNull("i"), Value::Int(2));
}

TEST(ExistsPatternTest, PropertyExistenceFormStillWorks) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"P"}, {{"x", Value::Int(1)}})
                        .Node(2, {"P"})
                        .Build();
  auto q = ParseCypherQuery(
      "MATCH (p:P) WHERE exists(p.x) RETURN id(p) AS i");
  ASSERT_TRUE(q.ok()) << q.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*q, g, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->rows()[0].GetOrNull("i"), Value::Int(1));
}

}  // namespace
}  // namespace seraph
