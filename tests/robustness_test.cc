// Failure-injection / fuzz-style robustness: hostile query text must come
// back as Status, never crash; and the matcher is checked against a
// brute-force oracle over randomized graphs.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

#include "cypher/executor.h"
#include "cypher/lexer.h"
#include "cypher/parser.h"
#include "graph/graph_builder.h"
#include "seraph/seraph_parser.h"

namespace seraph {
namespace {

// ---------------------------------------------------------------------------
// Parser robustness
// ---------------------------------------------------------------------------

// Round multiplier for fuzz loops; CI sets SERAPH_FUZZ_ROUNDS to fuzz
// harder under sanitizers without slowing local runs.
int FuzzRounds(int base) {
  if (const char* env = std::getenv("SERAPH_FUZZ_ROUNDS")) {
    long factor = std::strtol(env, nullptr, 10);
    if (factor > 1) return base * static_cast<int>(factor);
  }
  return base;
}

class ParserFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int> len_dist(0, 200);
  std::uniform_int_distribution<int> chr(32, 126);
  for (int round = 0; round < FuzzRounds(50); ++round) {
    std::string text;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(chr(rng));
    }
    // Outcomes are unspecified; not crashing (and not hanging) is the
    // contract.
    (void)ParseCypherQuery(text);
    (void)ParseSeraphQuery(text);
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  std::mt19937_64 rng(GetParam() + 1000);
  static const char* kPieces[] = {
      "MATCH",  "RETURN", "WITH",   "WHERE", "UNWIND", "EMIT",    "WITHIN",
      "EVERY",  "(",      ")",      "[",     "]",      "{",       "}",
      "-",      "->",     "<-",     "*",     "..",     ":",       ",",
      "|",      "=",      "<>",     "<=",    "n",      "r",       "Label",
      "'str'",  "42",     "1.5",    "AND",   "OR",     "NOT",     "NULL",
      "count",  "PT5M",   "AS",     "IN",    "ALL",    "EXISTS",  "$p",
      "REGISTER", "QUERY", "STARTING", "AT", "ON", "ENTERING", "SNAPSHOT"};
  std::uniform_int_distribution<int> len_dist(1, 40);
  std::uniform_int_distribution<size_t> piece(0, std::size(kPieces) - 1);
  for (int round = 0; round < FuzzRounds(50); ++round) {
    std::string text;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      text += kPieces[piece(rng)];
      text += ' ';
    }
    (void)ParseCypherQuery(text);
    (void)ParseSeraphQuery(text);
  }
}

TEST_P(ParserFuzzTest, ArbitraryBytesIncludingNonPrintableNeverCrash) {
  // Full byte range: NULs, control characters, high-bit bytes — the
  // lexer must treat them as data, never as something to trust.
  std::mt19937_64 rng(GetParam() + 2000);
  std::uniform_int_distribution<int> len_dist(0, 300);
  std::uniform_int_distribution<int> chr(0, 255);
  for (int round = 0; round < FuzzRounds(50); ++round) {
    std::string text;
    int len = len_dist(rng);
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(chr(rng));
    }
    (void)ParseCypherQuery(text);
    (void)ParseSeraphQuery(text);
  }
}

TEST_P(ParserFuzzTest, ValidQueriesWithInjectedByteNoiseNeverCrash) {
  // Start from a valid query and corrupt a few positions with arbitrary
  // bytes — exercises deeper parser states than pure byte soup reaches.
  std::mt19937_64 rng(GetParam() + 3000);
  const std::string base =
      "REGISTER QUERY q STARTING AT 2022-10-14T14:45h { MATCH "
      "(b:Bike)-[r:rentedAt]->(s:Station) WITHIN PT1H WHERE b.id > 3 "
      "EMIT b.id, count(*) ON ENTERING EVERY PT5M }";
  std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<int> chr(0, 255);
  std::uniform_int_distribution<int> edits(1, 6);
  for (int round = 0; round < FuzzRounds(50); ++round) {
    std::string text = base;
    int n = edits(rng);
    for (int i = 0; i < n; ++i) {
      text[pos(rng)] = static_cast<char>(chr(rng));
    }
    (void)ParseCypherQuery(text);
    (void)ParseSeraphQuery(text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Range(0, 10));

TEST(ParserRobustnessTest, EveryPrefixOfValidQueriesParsesOrErrs) {
  const std::string queries[] = {
      "MATCH (b:Bike)-[r:rentedAt]->(s:Station), "
      "q = (b)-[:returnedAt|rentedAt*3..]-(o:Station) "
      "WHERE ALL(e IN relationships(q) WHERE e.user_id = r.user_id) "
      "RETURN r.user_id, s.id ORDER BY s.id SKIP 1 LIMIT 2",
      "REGISTER QUERY q STARTING AT 2022-10-14T14:45h { MATCH (n) WITHIN "
      "PT1H EMIT n.id ON ENTERING EVERY PT5M }",
  };
  for (const std::string& full : queries) {
    for (size_t cut = 0; cut <= full.size(); ++cut) {
      std::string prefix = full.substr(0, cut);
      (void)ParseCypherQuery(prefix);
      (void)ParseSeraphQuery(prefix);
    }
  }
}

TEST(ParserRobustnessTest, DeepNestingDoesNotOverflow) {
  // 500 nested parentheses: must parse (or error) without stack issues.
  std::string text = "RETURN ";
  for (int i = 0; i < 500; ++i) text += '(';
  text += "1";
  for (int i = 0; i < 500; ++i) text += ')';
  auto q = ParseCypherQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  std::string unbalanced = "RETURN ";
  for (int i = 0; i < 500; ++i) unbalanced += '(';
  EXPECT_FALSE(ParseCypherQuery(unbalanced).ok());
}

TEST(ParserRobustnessTest, PathologicalNestingIsARejectedParseError) {
  // Way past Parser::kMaxExpressionDepth: the depth guard must turn the
  // would-be stack overflow into a clean kParseError (balanced or not,
  // parens or list brackets alike).
  constexpr int kDepth = 20'000;
  std::string parens = "RETURN ";
  for (int i = 0; i < kDepth; ++i) parens += '(';
  parens += "1";
  for (int i = 0; i < kDepth; ++i) parens += ')';
  auto deep = ParseCypherQuery(parens);
  ASSERT_FALSE(deep.ok());
  EXPECT_EQ(deep.status().code(), StatusCode::kParseError);

  std::string brackets = "RETURN ";
  for (int i = 0; i < kDepth; ++i) brackets += '[';
  auto deep_list = ParseCypherQuery(brackets);
  ASSERT_FALSE(deep_list.ok());
  EXPECT_EQ(deep_list.status().code(), StatusCode::kParseError);

  std::string mixed = "RETURN ";
  for (int i = 0; i < kDepth; ++i) mixed += (i % 2 == 0) ? '(' : '[';
  EXPECT_FALSE(ParseCypherQuery(mixed).ok());

  // The same guard protects the Seraph wrapper grammar.
  std::string seraph =
      "REGISTER QUERY q STARTING AT 2022-10-14T14:45h { MATCH (n) WITHIN "
      "PT1H WHERE ";
  for (int i = 0; i < kDepth; ++i) seraph += '(';
  EXPECT_FALSE(ParseSeraphQuery(seraph).ok());
}

// ---------------------------------------------------------------------------
// Matcher vs. brute-force oracle
// ---------------------------------------------------------------------------

struct RandomGraph {
  PropertyGraph graph;
  std::vector<std::pair<NodeId, NodeId>> edges;  // Parallel to rel ids 1..m.
};

RandomGraph MakeRandomGraph(std::mt19937_64* rng, int nodes, int rels) {
  RandomGraph out;
  GraphBuilder b;
  for (int i = 1; i <= nodes; ++i) {
    b.Node(i, {i % 2 == 0 ? "Even" : "Odd"}, {{"id", Value::Int(i)}});
  }
  std::uniform_int_distribution<int64_t> pick(1, nodes);
  for (int i = 1; i <= rels; ++i) {
    int64_t src = pick(*rng);
    int64_t trg = pick(*rng);
    b.Rel(i, src, trg, i % 3 == 0 ? "B" : "A");
    out.edges.emplace_back(NodeId{src}, NodeId{trg});
  }
  out.graph = b.Build();
  return out;
}

int64_t CountRows(const PropertyGraph& g, const std::string& query) {
  auto q = ParseCypherQuery(query);
  EXPECT_TRUE(q.ok()) << q.status();
  ExecutionOptions options;
  auto result = ExecuteQueryOnGraph(*q, g, options);
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? static_cast<int64_t>(result->size()) : -1;
}

class MatcherOracleTest : public ::testing::TestWithParam<int> {};

TEST_P(MatcherOracleTest, HopCountsMatchBruteForce) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  RandomGraph rg = MakeRandomGraph(&rng, 8, 14);
  int64_t m = static_cast<int64_t>(rg.edges.size());

  // Directed single hop: one row per relationship.
  EXPECT_EQ(CountRows(rg.graph, "MATCH (a)-[r]->(b) RETURN r"), m);

  // Undirected single hop: two rows per non-loop, one per loop.
  int64_t loops = 0;
  for (const auto& [src, trg] : rg.edges) {
    if (src == trg) ++loops;
  }
  EXPECT_EQ(CountRows(rg.graph, "MATCH (a)-[r]-(b) RETURN r"),
            2 * (m - loops) + loops);

  // Two directed hops with relationship uniqueness: ordered pairs of
  // distinct relationships where the first's target is the second's
  // source.
  int64_t two_hops = 0;
  for (size_t i = 0; i < rg.edges.size(); ++i) {
    for (size_t j = 0; j < rg.edges.size(); ++j) {
      if (i == j) continue;
      if (rg.edges[i].second == rg.edges[j].first) ++two_hops;
    }
  }
  EXPECT_EQ(
      CountRows(rg.graph, "MATCH (a)-[r1]->(x)-[r2]->(b) RETURN r1, r2"),
      two_hops);

  // Label filter: rows where the source node is Even.
  int64_t even_src = 0;
  for (const auto& [src, trg] : rg.edges) {
    if (src.value % 2 == 0) ++even_src;
  }
  EXPECT_EQ(CountRows(rg.graph, "MATCH (a:Even)-[r]->(b) RETURN r"),
            even_src);

  // Type filter.
  int64_t type_b = 0;
  for (int64_t i = 1; i <= m; ++i) {
    if (i % 3 == 0) ++type_b;
  }
  EXPECT_EQ(CountRows(rg.graph, "MATCH ()-[r:B]->() RETURN r"), type_b);
}

TEST_P(MatcherOracleTest, VarLengthExactTwoMatchesComposedHops) {
  std::mt19937_64 rng(GetParam() * 17 + 3);
  RandomGraph rg = MakeRandomGraph(&rng, 7, 12);
  // (a)-[*2..2]->(b) must equal (a)-[r1]->()-[r2]->(b) row-for-row
  // (both apply relationship uniqueness).
  EXPECT_EQ(CountRows(rg.graph, "MATCH (a)-[*2..2]->(b) RETURN a, b"),
            CountRows(rg.graph,
                      "MATCH (a)-[r1]->(x)-[r2]->(b) RETURN a, r1, x, r2, b"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracleTest, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// Evaluation failure injection
// ---------------------------------------------------------------------------

TEST(ExecutionRobustnessTest, RuntimeErrorsAreStatusesNotCrashes) {
  PropertyGraph g = GraphBuilder()
                        .Node(1, {"N"}, {{"x", Value::Int(0)}})
                        .Build();
  const char* bad_queries[] = {
      "MATCH (n:N) RETURN 1 / n.x",              // Division by zero.
      "MATCH (n:N) RETURN n.x + 'a' + [1]",      // Type error.
      "MATCH (n:N) RETURN missing_var",          // Unbound variable.
      "MATCH (n:N) RETURN size(n.x)",            // size() of INTEGER.
      "MATCH (n:N) RETURN $nope",                // Missing parameter.
  };
  for (const char* text : bad_queries) {
    auto q = ParseCypherQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    ExecutionOptions options;
    auto result = ExecuteQueryOnGraph(*q, g, options);
    EXPECT_FALSE(result.ok()) << text;
  }
}

}  // namespace
}  // namespace seraph
