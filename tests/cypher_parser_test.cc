// Parser tests for the Fig. 3 Cypher core (plus WITHIN, Fig. 6).
#include <gtest/gtest.h>

#include "cypher/parser.h"

namespace seraph {
namespace {

Query MustParse(std::string_view text) {
  auto q = ParseCypherQuery(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? std::move(q).value() : Query{};
}

const MatchClause& FirstMatch(const Query& q) {
  return std::get<MatchClause>(q.parts[0].clauses[0]);
}

TEST(ParserTest, MinimalQuery) {
  Query q = MustParse("MATCH (n) RETURN n");
  ASSERT_EQ(q.parts.size(), 1u);
  ASSERT_EQ(q.parts[0].clauses.size(), 1u);
  const MatchClause& m = FirstMatch(q);
  ASSERT_EQ(m.patterns.size(), 1u);
  EXPECT_EQ(m.patterns[0].nodes[0].variable, "n");
  EXPECT_EQ(q.parts[0].ret.body.items[0].alias, "n");
}

TEST(ParserTest, NodePatternLabelsAndProperties) {
  Query q = MustParse("MATCH (s:Station:Hub {id: 3, name: 'x'}) RETURN s");
  const NodePattern& n = FirstMatch(q).patterns[0].nodes[0];
  EXPECT_EQ(n.labels, (std::vector<std::string>{"Station", "Hub"}));
  ASSERT_EQ(n.properties.size(), 2u);
  EXPECT_EQ(n.properties[0].first, "id");
}

TEST(ParserTest, RelationshipDirections) {
  {
    Query q = MustParse("MATCH (a)-[r:R]->(b) RETURN r");
    EXPECT_EQ(FirstMatch(q).patterns[0].rels[0].direction,
              RelDirection::kOutgoing);
  }
  {
    Query q = MustParse("MATCH (a)<-[r:R]-(b) RETURN r");
    EXPECT_EQ(FirstMatch(q).patterns[0].rels[0].direction,
              RelDirection::kIncoming);
  }
  {
    Query q = MustParse("MATCH (a)-[r:R]-(b) RETURN r");
    EXPECT_EQ(FirstMatch(q).patterns[0].rels[0].direction,
              RelDirection::kUndirected);
  }
  {
    Query q = MustParse("MATCH (a)-->(b) RETURN a");
    EXPECT_EQ(FirstMatch(q).patterns[0].rels[0].direction,
              RelDirection::kOutgoing);
    EXPECT_TRUE(FirstMatch(q).patterns[0].rels[0].types.empty());
  }
  {
    Query q = MustParse("MATCH (a)--(b) RETURN a");
    EXPECT_EQ(FirstMatch(q).patterns[0].rels[0].direction,
              RelDirection::kUndirected);
  }
}

TEST(ParserTest, TypeAlternation) {
  Query q = MustParse("MATCH (a)-[:returnedAt|rentedAt]->(b) RETURN a");
  EXPECT_EQ(FirstMatch(q).patterns[0].rels[0].types,
            (std::vector<std::string>{"returnedAt", "rentedAt"}));
}

TEST(ParserTest, VariableLengthBounds) {
  {
    Query q = MustParse("MATCH (a)-[*3..]->(b) RETURN a");
    const RelPattern& r = FirstMatch(q).patterns[0].rels[0];
    EXPECT_TRUE(r.variable_length);
    EXPECT_EQ(r.min_hops, 3);
    EXPECT_FALSE(r.max_hops.has_value());
  }
  {
    Query q = MustParse("MATCH (a)-[*..5]->(b) RETURN a");
    const RelPattern& r = FirstMatch(q).patterns[0].rels[0];
    EXPECT_FALSE(r.min_hops.has_value());
    EXPECT_EQ(r.max_hops, 5);
  }
  {
    Query q = MustParse("MATCH (a)-[*2..4]->(b) RETURN a");
    const RelPattern& r = FirstMatch(q).patterns[0].rels[0];
    EXPECT_EQ(r.min_hops, 2);
    EXPECT_EQ(r.max_hops, 4);
  }
  {
    Query q = MustParse("MATCH (a)-[*2]->(b) RETURN a");
    const RelPattern& r = FirstMatch(q).patterns[0].rels[0];
    EXPECT_EQ(r.min_hops, 2);
    EXPECT_EQ(r.max_hops, 2);
  }
  {
    Query q = MustParse("MATCH (a)-[*]->(b) RETURN a");
    const RelPattern& r = FirstMatch(q).patterns[0].rels[0];
    EXPECT_TRUE(r.variable_length);
    EXPECT_FALSE(r.min_hops.has_value());
    EXPECT_FALSE(r.max_hops.has_value());
  }
}

TEST(ParserTest, NamedPathAndShortestPath) {
  Query q = MustParse(
      "MATCH p = shortestPath((a:Rack)-[:CONNECTS*..15]-(b:Router)) "
      "RETURN p");
  const PathPattern& p = FirstMatch(q).patterns[0];
  EXPECT_EQ(p.path_variable, "p");
  EXPECT_EQ(p.mode, PathMode::kShortest);
  EXPECT_EQ(p.rels[0].max_hops, 15);
}

TEST(ParserTest, ShortestPathRequiresVarLength) {
  EXPECT_FALSE(
      ParseCypherQuery("MATCH p = shortestPath((a)-[:R]->(b)) RETURN p")
          .ok());
}

TEST(ParserTest, MultiplePatternsAndWhere) {
  Query q = MustParse(
      "MATCH (b:Bike)-[r:rentedAt]->(s:Station), q = (b)-[*3..]-(o) "
      "WHERE r.user_id = 5 RETURN q");
  const MatchClause& m = FirstMatch(q);
  EXPECT_EQ(m.patterns.size(), 2u);
  EXPECT_EQ(m.patterns[1].path_variable, "q");
  EXPECT_NE(m.where, nullptr);
}

TEST(ParserTest, WithinWindowOnMatch) {
  Query q = MustParse("MATCH (n) WITHIN PT1H WHERE n.x > 0 RETURN n");
  const MatchClause& m = FirstMatch(q);
  ASSERT_TRUE(m.within.has_value());
  EXPECT_EQ(m.within->millis(), 3'600'000);
  EXPECT_NE(m.where, nullptr);
}

TEST(ParserTest, OptionalMatchAndUnwindAndWith) {
  Query q = MustParse(
      "MATCH (a) OPTIONAL MATCH (a)-[r]->(b) "
      "WITH a, collect(b) AS bs WHERE size(bs) > 0 "
      "UNWIND bs AS b RETURN a, b");
  ASSERT_EQ(q.parts[0].clauses.size(), 4u);
  EXPECT_TRUE(std::get<MatchClause>(q.parts[0].clauses[1]).optional);
  const auto& with = std::get<WithClause>(q.parts[0].clauses[2]);
  EXPECT_EQ(with.body.items[1].alias, "bs");
  EXPECT_NE(with.where, nullptr);
  EXPECT_EQ(std::get<UnwindClause>(q.parts[0].clauses[3]).alias, "b");
}

TEST(ParserTest, ReturnModifiers) {
  Query q = MustParse(
      "MATCH (n) RETURN DISTINCT n.x AS x ORDER BY x DESC, n.y SKIP 2 "
      "LIMIT 10");
  const ProjectionBody& body = q.parts[0].ret.body;
  EXPECT_TRUE(body.distinct);
  ASSERT_EQ(body.order_by.size(), 2u);
  EXPECT_FALSE(body.order_by[0].ascending);
  EXPECT_TRUE(body.order_by[1].ascending);
  EXPECT_NE(body.skip, nullptr);
  EXPECT_NE(body.limit, nullptr);
}

TEST(ParserTest, ReturnStar) {
  Query q = MustParse("MATCH (n) RETURN *");
  EXPECT_TRUE(q.parts[0].ret.body.include_all);
}

TEST(ParserTest, Unions) {
  Query q = MustParse(
      "MATCH (a:X) RETURN a.id UNION MATCH (a:Y) RETURN a.id "
      "UNION ALL MATCH (a:Z) RETURN a.id");
  ASSERT_EQ(q.parts.size(), 3u);
  ASSERT_EQ(q.union_all.size(), 2u);
  EXPECT_FALSE(q.union_all[0]);
  EXPECT_TRUE(q.union_all[1]);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  EXPECT_TRUE(ParseCypherQuery("match (n) return n").ok());
  EXPECT_TRUE(ParseCypherQuery("Match (n) Where n.x = 1 Return n").ok());
}

TEST(ParserTest, DefaultAliasIsExpressionText) {
  Query q = MustParse("MATCH (n) RETURN n.user_id, size(n.xs)");
  EXPECT_EQ(q.parts[0].ret.body.items[0].alias, "n.user_id");
  EXPECT_EQ(q.parts[0].ret.body.items[1].alias, "size(n.xs)");
}

TEST(ParserTest, ParseErrors) {
  EXPECT_FALSE(ParseCypherQuery("").ok());
  EXPECT_FALSE(ParseCypherQuery("MATCH (n)").ok());        // No RETURN.
  EXPECT_FALSE(ParseCypherQuery("RETURN").ok());           // No items.
  EXPECT_FALSE(ParseCypherQuery("MATCH (n RETURN n").ok());
  EXPECT_FALSE(ParseCypherQuery("MATCH (n) RETURN n extra").ok());
  EXPECT_FALSE(ParseCypherQuery("MATCH (n) RETURN unknownFn(n)").ok());
  EXPECT_FALSE(
      ParseCypherQuery("MATCH (n) WITHIN PT0S RETURN n").ok());  // Zero width.
}

TEST(ParserTest, ExpressionPrecedence) {
  auto e = ParseCypherExpression("1 + 2 * 3 ^ 2");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(1 + (2 * (3 ^ 2)))");
  auto cmp = ParseCypherExpression("a AND b OR NOT c");
  ASSERT_TRUE(cmp.ok());
  EXPECT_EQ((*cmp)->ToString(), "((a AND b) OR NOT (c))");
}

TEST(ParserTest, ComparisonChains) {
  auto e = ParseCypherExpression("win_start <= t <= win_end");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "(win_start <= t <= win_end)");
}

TEST(ParserTest, ListComprehensionAndQuantifier) {
  auto e = ParseCypherExpression(
      "[n IN nodes(q) WHERE 'Station' IN labels(n) | n.id]");
  ASSERT_TRUE(e.ok()) << e.status();
  auto a = ParseCypherExpression(
      "ALL(e IN rels WHERE e.user_id = r.user_id)");
  ASSERT_TRUE(a.ok()) << a.status();
}

TEST(ParserTest, CaseExpression) {
  auto searched = ParseCypherExpression(
      "CASE WHEN x > 0 THEN 'pos' WHEN x < 0 THEN 'neg' ELSE 'zero' END");
  ASSERT_TRUE(searched.ok()) << searched.status();
  auto simple =
      ParseCypherExpression("CASE x WHEN 1 THEN 'one' ELSE 'many' END");
  ASSERT_TRUE(simple.ok()) << simple.status();
}

TEST(ParserTest, CountStarAndDistinctAggregate) {
  auto star = ParseCypherExpression("count(*)");
  ASSERT_TRUE(star.ok());
  auto dist = ParseCypherExpression("count(DISTINCT n.x)");
  ASSERT_TRUE(dist.ok());
}

TEST(ParserTest, ListingOneParses) {
  // The running example's Cypher workaround (repaired Listing 1).
  Query q = MustParse(R"(
    WITH datetime() AS win_end, datetime() - duration('PT1H') AS win_start
    MATCH (b:Bike)-[r:rentedAt]->(s:Station),
          q = (b)-[:returnedAt|rentedAt*3..]-(o:Station)
    WITH r, s, q, relationships(q) AS rels,
         [n IN nodes(q) WHERE 'Station' IN labels(n) | n.id] AS hops,
         win_start, win_end
    WHERE win_start <= r.val_time AND r.val_time <= win_end
      AND ALL(e IN rels WHERE
            win_start <= e.val_time AND e.val_time <= win_end
            AND e.user_id = r.user_id
            AND e.val_time > r.val_time
            AND (e.duration IS NULL OR e.duration < 20))
    RETURN r.user_id, s.id, r.val_time, hops
  )");
  EXPECT_EQ(q.parts.size(), 1u);
  EXPECT_EQ(q.parts[0].clauses.size(), 3u);
  EXPECT_EQ(q.parts[0].ret.body.items.size(), 4u);
}

}  // namespace
}  // namespace seraph
