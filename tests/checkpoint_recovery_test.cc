// Durability subsystem: codec round trips, atomic checkpoint commits,
// and crash recovery (docs/INTERNALS.md, "Durability & recovery").
//
// The central property asserted here is replay exactness: for a crash at
// ANY point — mid-segment-write, before the manifest rename, during
// recovery itself, or with the newest generation torn / bit-flipped /
// partially deleted — restoring from the newest valid manifest and
// replaying the queue suffix produces sink output bit-identical to the
// uninterrupted run. Concretely: the recovered run emits exactly the
// oracle's suffix starting at the restored evaluation count, so
// (pre-crash committed output) + (post-restore output) == oracle.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/fault.h"
#include "fault_doubles.h"
#include "graph/graph_builder.h"
#include "io/json.h"
#include "persist/checkpoint.h"
#include "persist/codec.h"
#include "persist/recovery.h"
#include "seraph/continuous_engine.h"
#include "seraph/dead_letter.h"
#include "seraph/stream_driver.h"
#include "shard/partitioner.h"
#include "shard/sharded_engine.h"

namespace seraph {
namespace {

namespace fs = std::filesystem;
using persist::AppendFileHeader;
using persist::AppendFrame;
using persist::CheckpointManager;
using persist::CheckpointOptions;
using persist::Decoder;
using persist::Encoder;
using persist::FrameReader;

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

PropertyGraph Item(int64_t id) {
  return GraphBuilder().Node(id, {"X"}, {{"id", Value::Int(id)}}).Build();
}

constexpr char kCountQuery[] = R"(
  REGISTER QUERY q STARTING AT '1970-01-01T00:05'
  { MATCH (n:X) WITHIN PT30M EMIT n.id SNAPSHOT EVERY PT5M })";

constexpr char kConsumer[] = "seraph-engine";

// The victim runs produce in rounds and pump after each round, so a
// "crash" can land between any two pumps.
constexpr int kRounds = 6;
constexpr int kPerRound = 3;
constexpr int kEvents = kRounds * kPerRound;

void ProduceRound(EventQueue* queue, int round) {
  for (int i = round * kPerRound; i < (round + 1) * kPerRound; ++i) {
    ASSERT_TRUE(queue->Produce(Item(i + 1), T(1 + 2 * i)).ok());
  }
}

// The uninterrupted run: same events, same pump cadence, no faults.
TimeVaryingTable Oracle() {
  EventQueue queue;
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  EXPECT_TRUE(engine.RegisterText(kCountQuery).ok());
  StreamDriver driver(&queue, &engine, {});
  for (int r = 0; r < kRounds; ++r) {
    ProduceRound(&queue, r);
    auto pumped = driver.PumpAll();
    EXPECT_TRUE(pumped.ok()) << pumped.status();
  }
  EXPECT_TRUE(driver.Finish().ok());
  return sink.ResultsFor("q");
}

// `actual` must be exactly `expected[from..]`, windows and rows included.
void ExpectSuffixMatch(const TimeVaryingTable& actual,
                       const TimeVaryingTable& expected, size_t from) {
  ASSERT_LE(from, expected.size());
  ASSERT_EQ(actual.size(), expected.size() - from);
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual.entries()[i].window, expected.entries()[from + i].window);
    EXPECT_EQ(io::ToJson(actual.entries()[i].table.Canonicalized()),
              io::ToJson(expected.entries()[from + i].table.Canonicalized()))
        << "recovered result " << i << " diverged from oracle result "
        << (from + i);
  }
}

std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "seraph_ckpt_" + name;
  fs::remove_all(dir);
  return dir;
}

class CheckpointRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// Codec: round trips and corruption detection
// ---------------------------------------------------------------------------

TEST_F(CheckpointRecoveryTest, ValueCodecRoundTripsEveryKind) {
  std::vector<Value> values;
  values.push_back(Value::Null());
  values.push_back(Value::Bool(true));
  values.push_back(Value::Int(-42));
  values.push_back(Value::Float(3.25));
  values.push_back(Value::String("héllo \"wörld\""));
  values.push_back(Value::MakeList({Value::Int(1), Value::String("x")}));
  values.push_back(Value::MakeMap(
      {{"a", Value::Int(1)}, {"b", Value::MakeList({Value::Null()})}}));
  values.push_back(Value::DateTime(T(90)));
  values.push_back(Value::Dur(Duration::FromMinutes(7)));
  values.push_back(Value::Node(NodeId{17}));
  values.push_back(Value::Relationship(RelId{23}));
  PathValue path;
  path.nodes = {NodeId{1}, NodeId{2}};
  path.rels = {RelId{5}};
  values.push_back(Value::Path(std::move(path)));

  for (const Value& value : values) {
    Encoder enc;
    persist::WriteValue(value, &enc);
    Decoder dec(enc.buffer());
    auto back = persist::ReadValue(&dec);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(dec.done());
    // Deterministic encoding: re-encoding the decoded value reproduces
    // the exact bytes (the basis of byte-identical checkpoints).
    Encoder again;
    persist::WriteValue(*back, &again);
    EXPECT_EQ(enc.buffer(), again.buffer());
  }
}

TEST_F(CheckpointRecoveryTest, GraphAndElementCodecRoundTrip) {
  PropertyGraph graph = GraphBuilder()
                            .Node(1, {"Station"}, {{"id", Value::Int(1)}})
                            .Node(5, {"E-Bike", "Vehicle"})
                            .Rel(9, 5, 1, "rentedAt",
                                 {{"user", Value::String("ann")}})
                            .Build();
  Encoder enc;
  persist::WriteGraph(graph, &enc);
  Decoder dec(enc.buffer());
  auto back = persist::ReadGraph(&dec);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back->num_nodes(), 2u);
  EXPECT_EQ(back->num_relationships(), 1u);
  Encoder again;
  persist::WriteGraph(*back, &again);
  EXPECT_EQ(enc.buffer(), again.buffer());

  StreamElement element{std::make_shared<const PropertyGraph>(graph), T(12)};
  Encoder element_enc;
  persist::WriteStreamElement(element, &element_enc);
  Decoder element_dec(element_enc.buffer());
  auto element_back = persist::ReadStreamElement(&element_dec);
  ASSERT_TRUE(element_back.ok()) << element_back.status();
  EXPECT_EQ(element_back->timestamp, T(12));
  EXPECT_EQ(element_back->graph->num_nodes(), 2u);
}

TEST_F(CheckpointRecoveryTest, QueryCheckpointCodecRoundTrip) {
  QueryCheckpoint query;
  query.name = "q";
  query.next_eval = T(25);
  query.done = false;
  query.disabled = true;
  query.consecutive_failures = 3;
  query.has_previous = true;
  Table previous(std::set<std::string>{"n.id"});
  Record row;
  row.Set("n.id", Value::Int(7));
  previous.AppendUnchecked(std::move(row));
  query.previous_result = std::move(previous);
  query.stats.evaluations = 11;
  query.stats.rows_emitted = 4;
  query.stats.eval_failures = 2;
  query.stats.last_error = Status::EvaluationError("boom");

  Encoder enc;
  persist::WriteQueryCheckpoint(query, &enc);
  Decoder dec(enc.buffer());
  auto back = persist::ReadQueryCheckpoint(&dec);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(dec.done());
  EXPECT_EQ(back->name, "q");
  EXPECT_EQ(back->next_eval, T(25));
  EXPECT_TRUE(back->disabled);
  EXPECT_EQ(back->consecutive_failures, 3);
  EXPECT_TRUE(back->has_previous);
  EXPECT_TRUE(back->stats == query.stats);
  Encoder again;
  persist::WriteQueryCheckpoint(*back, &again);
  EXPECT_EQ(enc.buffer(), again.buffer());
}

TEST_F(CheckpointRecoveryTest, DeadLetterEntryCodecRoundTrip) {
  DeadLetterQueue dlq;
  TimeAnnotatedTable result;
  result.window = TimeInterval{T(0), T(5)};
  Table table(std::set<std::string>{"n.id"});
  Record row;
  row.Set("n.id", Value::Int(3));
  table.AppendUnchecked(std::move(row));
  result.table = std::move(table);
  dlq.AddSinkResult("csv", "q", T(5), result,
                    Status::EvaluationError("schema mismatch"), 3);
  dlq.AddElement(kConsumer,
                 StreamElement{std::make_shared<const PropertyGraph>(Item(7)),
                               T(9)},
                 Status::Unavailable("poison"), 2);
  dlq.AddEvaluationFailure("q2", T(10), Status::EvaluationError("div"));

  for (const DeadLetterEntry& entry : dlq.entries()) {
    Encoder enc;
    persist::WriteDeadLetterEntry(entry, &enc);
    Decoder dec(enc.buffer());
    auto back = persist::ReadDeadLetterEntry(&dec);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(dec.done());
    EXPECT_EQ(back->kind, entry.kind);
    EXPECT_EQ(back->source, entry.source);
    EXPECT_EQ(back->error, entry.error);
    Encoder again;
    persist::WriteDeadLetterEntry(*back, &again);
    EXPECT_EQ(enc.buffer(), again.buffer());
  }
}

TEST_F(CheckpointRecoveryTest, FrameReaderRejectsCorruption) {
  std::string file;
  AppendFileHeader(&file);
  Encoder enc;
  enc.PutString("payload");
  enc.PutI64(42);
  AppendFrame(enc.buffer(), &file);

  {
    FrameReader reader(file);
    ASSERT_TRUE(reader.ReadHeader().ok());
    auto frame = reader.Next();
    ASSERT_TRUE(frame.ok()) << frame.status();
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kNotFound);
  }
  {
    // Bit flip inside the payload: the frame CRC catches it.
    std::string flipped = file;
    flipped[flipped.size() - 3] ^= 0x40;
    FrameReader reader(flipped);
    ASSERT_TRUE(reader.ReadHeader().ok());
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Torn write: the file ends mid-frame.
    std::string torn = file.substr(0, file.size() - 2);
    FrameReader reader(torn);
    ASSERT_TRUE(reader.ReadHeader().ok());
    EXPECT_EQ(reader.Next().status().code(), StatusCode::kInvalidArgument);
  }
  {
    // Wrong magic: not one of our files at all.
    std::string alien = file;
    alien[0] ^= 0xFF;
    FrameReader reader(alien);
    EXPECT_EQ(reader.ReadHeader().code(), StatusCode::kInvalidArgument);
  }
}

// ---------------------------------------------------------------------------
// Engine capture/restore (no disk)
// ---------------------------------------------------------------------------

TEST_F(CheckpointRecoveryTest, CaptureRestoreRoundTripContinuesIdentically) {
  ContinuousEngine original;
  CollectingSink before;
  original.AddSink(&before);
  ASSERT_TRUE(original.RegisterText(kCountQuery).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(original.Ingest(Item(i + 1), T(1 + 2 * i)).ok());
  }
  ASSERT_TRUE(original.AdvanceTo(T(11)).ok());
  EngineCheckpoint checkpoint = original.CaptureCheckpoint();
  EXPECT_EQ(checkpoint.queries.size(), 1u);
  EXPECT_EQ(checkpoint.streams.at("").size(), 6u);

  ContinuousEngine restored;
  ASSERT_TRUE(restored.RegisterText(kCountQuery).ok());
  ASSERT_TRUE(restored.RestoreFrom(checkpoint).ok());
  EXPECT_EQ(restored.evaluations_run(), original.evaluations_run());
  EXPECT_TRUE(*restored.StatsFor("q") == *original.StatsFor("q"));
  EXPECT_EQ(restored.stream().size(), original.stream().size());

  // Restoring into a non-fresh engine is rejected.
  EXPECT_FALSE(restored.RestoreFrom(checkpoint).ok());
  // A checkpoint naming an unregistered query is rejected.
  ContinuousEngine empty;
  EXPECT_FALSE(empty.RestoreFrom(checkpoint).ok());

  // Both engines continue over the same future events and must emit
  // identical output from here on.
  CollectingSink original_after;
  CollectingSink restored_after;
  original.AddSink(&original_after);
  restored.AddSink(&restored_after);
  for (int i = 6; i < 12; ++i) {
    ASSERT_TRUE(original.Ingest(Item(i + 1), T(1 + 2 * i)).ok());
    ASSERT_TRUE(restored.Ingest(Item(i + 1), T(1 + 2 * i)).ok());
  }
  ASSERT_TRUE(original.AdvanceTo(T(25)).ok());
  ASSERT_TRUE(restored.AdvanceTo(T(25)).ok());
  const TimeVaryingTable& a = original_after.ResultsFor("q");
  const TimeVaryingTable& b = restored_after.ResultsFor("q");
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.entries()[i].window, b.entries()[i].window);
    EXPECT_EQ(io::ToJson(a.entries()[i].table.Canonicalized()),
              io::ToJson(b.entries()[i].table.Canonicalized()));
  }
}

// ---------------------------------------------------------------------------
// Checkpoint manager: commits, cadence, GC, failure accounting
// ---------------------------------------------------------------------------

// Runs a checkpointed victim for `pumps` rounds over `queue`. When
// `arm_point` is non-null, the fault point is armed at probability 1
// right before the final pump, so every checkpoint attempt of that pump
// dies — simulating a crash mid-commit. Returns the last committed
// generation via `last_seq`.
void RunVictim(const std::string& dir, EventQueue* queue, int pumps,
               const char* arm_point, uint64_t* last_seq) {
  EngineOptions options;
  options.checkpoint_every = 1;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  CheckpointOptions checkpoint_options;
  checkpoint_options.dir = dir;
  checkpoint_options.keep = 2;
  checkpoint_options.fsync = false;
  CheckpointManager manager(checkpoint_options);
  manager.BindQueue(kConsumer, queue);
  manager.AttachTo(&engine);
  StreamDriver driver(queue, &engine, {});
  for (int r = 0; r < pumps; ++r) {
    if (r == pumps - 1 && arm_point != nullptr) {
      FaultInjector::Global().ArmProbability(arm_point, 1.0);
    }
    ProduceRound(queue, r);
    auto pumped = driver.PumpAll();
    ASSERT_TRUE(pumped.ok()) << pumped.status();
  }
  if (arm_point != nullptr) {
    EXPECT_GT(manager.checkpoint_failures(), 0)
        << arm_point << " never fired";
    EXPECT_GT(engine.metrics()
                  .FindCounter("seraph_checkpoint_failures_total")
                  ->value(),
              0);
  } else if (pumps > 0) {
    EXPECT_GT(manager.checkpoints_written(), 0);
    EXPECT_GT(
        engine.metrics().FindCounter("seraph_checkpoint_total")->value(), 0);
    EXPECT_GT(engine.metrics()
                  .FindHistogram("seraph_checkpoint_duration_micros")
                  ->count(),
              0);
  }
  if (last_seq != nullptr) *last_seq = manager.last_seq();
  // The victim "crashes" here: engine, driver, and manager are abandoned
  // with whatever the directory holds.
}

// Recovers from `dir` into a fresh engine over the same queue, pumps the
// remaining rounds, and asserts the output is exactly the oracle suffix.
void RecoverAndCheck(const std::string& dir, EventQueue* queue,
                     const TimeVaryingTable& expected, int pumps_done) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  size_t restored_evals = 0;
  auto report =
      persist::RecoverAll(dir, &engine, queue, {kConsumer}, nullptr);
  if (report.ok()) {
    restored_evals = static_cast<size_t>(engine.StatsFor("q")->evaluations);
    // The committed offset and the checkpointed stream cover the same
    // prefix, so the backlog is exactly what the checkpoint missed.
    ASSERT_EQ(report->replay_backlog.at(kConsumer),
              queue->size() - engine.stream().size());
    EXPECT_EQ(engine.metrics()
                  .FindCounter("seraph_recovery_replayed_elements")
                  ->value(),
              static_cast<int64_t>(report->replay_backlog.at(kConsumer)));
  } else {
    // No generation ever committed: recovery degrades to a cold start.
    ASSERT_EQ(report.status().code(), StatusCode::kNotFound)
        << report.status();
    queue->Subscribe(kConsumer);
  }
  StreamDriver driver(queue, &engine, {});
  for (int r = pumps_done; r < kRounds; ++r) {
    ProduceRound(queue, r);
    auto pumped = driver.PumpAll();
    ASSERT_TRUE(pumped.ok()) << pumped.status();
  }
  // Replay whatever backlog remains even when no rounds are left.
  auto pumped = driver.PumpAll();
  ASSERT_TRUE(pumped.ok()) << pumped.status();
  ASSERT_TRUE(driver.Finish().ok());
  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
  ExpectSuffixMatch(sink.ResultsFor("q"), expected, restored_evals);
}

TEST_F(CheckpointRecoveryTest, GarbageCollectionKeepsConfiguredGenerations) {
  const std::string dir = FreshDir("gc");
  EventQueue queue;
  uint64_t last_seq = 0;
  RunVictim(dir, &queue, kRounds, nullptr, &last_seq);
  ASSERT_GT(last_seq, 2u);
  int manifests = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_FALSE(name.ends_with(".tmp")) << name << " leaked";
    uint64_t seq = 0;
    if (persist::ParseManifestFileName(name, &seq)) {
      ++manifests;
      EXPECT_GE(seq, last_seq - 1);  // keep = 2.
    }
  }
  EXPECT_EQ(manifests, 2);
  // Both retained generations load cleanly.
  EXPECT_TRUE(persist::LoadCheckpoint(dir, last_seq).ok());
  EXPECT_TRUE(persist::LoadCheckpoint(dir, last_seq - 1).ok());
  EXPECT_FALSE(persist::LoadCheckpoint(dir, last_seq - 2).ok());
}

// ---------------------------------------------------------------------------
// The crash-recovery equivalence property
// ---------------------------------------------------------------------------

// Crash at every fault point, at every pump boundary: after recovery the
// output continues bit-identically. "none" crashes with all checkpoints
// committed; the checkpoint.* points kill every commit of the final pump,
// forcing the fallback to the previous generation (or a cold start when
// the very first pump's checkpoints die).
TEST_F(CheckpointRecoveryTest, CrashRecoveryEquivalenceAtEveryFaultPoint) {
  const TimeVaryingTable expected = Oracle();
  // The CI crash-recovery matrix sets SERAPH_CRASH_POINT to pin one
  // fault point per job leg ("none" = crash with no injected checkpoint
  // fault); locally, unset, every point runs.
  const char* only_point = std::getenv("SERAPH_CRASH_POINT");
  int case_id = 0;
  for (const char* point :
       {static_cast<const char*>(nullptr), "checkpoint.write",
        "checkpoint.rename"}) {
    if (only_point != nullptr &&
        std::string(only_point) != (point ? point : "none")) {
      continue;
    }
    for (int crash_pump = 1; crash_pump <= kRounds; ++crash_pump) {
      SCOPED_TRACE(std::string("point=") + (point ? point : "none") +
                   " crash_pump=" + std::to_string(crash_pump));
      FaultInjector::Global().Reset();
      const std::string dir =
          FreshDir("equiv_" + std::to_string(case_id++));
      EventQueue queue;
      RunVictim(dir, &queue, crash_pump, point, nullptr);
      FaultInjector::Global().Reset();
      RecoverAndCheck(dir, &queue, expected, crash_pump);
    }
  }
}

TEST_F(CheckpointRecoveryTest, RecoveryReadFaultIsTransientAndRetriable) {
  const TimeVaryingTable expected = Oracle();
  const std::string dir = FreshDir("recovery_read");
  EventQueue queue;
  RunVictim(dir, &queue, 3, nullptr, nullptr);

  // The first recovery attempt dies at the recovery.read fault point —
  // the process killed mid-recovery. The retry (a fresh engine, as after
  // a real restart) succeeds and continues exactly.
  FaultInjector::Global().ArmNext("recovery.read", 1);
  {
    ContinuousEngine engine;
    ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
    auto report =
        persist::RecoverAll(dir, &engine, &queue, {kConsumer}, nullptr);
    ASSERT_FALSE(report.ok());
    EXPECT_TRUE(report.status().IsTransient()) << report.status();
  }
  RecoverAndCheck(dir, &queue, expected, 3);
}

// Corruption of the newest generation (bit rot, torn manifest, lost
// segment) falls back to the previous generation — and the run still
// continues bit-identically from there.
TEST_F(CheckpointRecoveryTest, CorruptedNewestGenerationFallsBack) {
  const TimeVaryingTable expected = Oracle();
  struct Corruption {
    const char* name;
    void (*apply)(const std::string& dir, uint64_t last_seq);
  };
  const Corruption corruptions[] = {
      {"bitflip",
       [](const std::string& dir, uint64_t last_seq) {
         const std::string path =
             dir + "/queries-" + std::to_string(last_seq) + ".seg";
         std::fstream file(path, std::ios::in | std::ios::out |
                                     std::ios::binary);
         ASSERT_TRUE(file.is_open());
         file.seekp(12);
         char byte = 0;
         file.seekg(12);
         file.get(byte);
         byte = static_cast<char>(byte ^ 0x20);
         file.seekp(12);
         file.put(byte);
       }},
      {"torn_manifest",
       [](const std::string& dir, uint64_t last_seq) {
         const std::string path = dir + "/" + persist::ManifestFileName(
                                                  last_seq);
         const auto size = fs::file_size(path);
         ASSERT_GT(size, 4u);
         fs::resize_file(path, size / 2);
       }},
      {"deleted_segment",
       [](const std::string& dir, uint64_t last_seq) {
         const std::string path =
             dir + "/offsets-" + std::to_string(last_seq) + ".seg";
         ASSERT_TRUE(fs::remove(path));
       }},
  };
  int case_id = 0;
  for (const Corruption& corruption : corruptions) {
    SCOPED_TRACE(corruption.name);
    const std::string dir =
        FreshDir("corrupt_" + std::to_string(case_id++));
    EventQueue queue;
    uint64_t last_seq = 0;
    RunVictim(dir, &queue, 3, nullptr, &last_seq);
    ASSERT_GT(last_seq, 1u);
    corruption.apply(dir, last_seq);

    // The damaged generation is skipped; the fallback loads.
    auto latest = persist::LoadLatestCheckpoint(dir);
    ASSERT_TRUE(latest.ok()) << latest.status();
    EXPECT_LT(latest->seq, last_seq);

    // Inspection reports the damage instead of hiding it.
    auto summaries = persist::InspectCheckpoints(dir);
    ASSERT_TRUE(summaries.ok()) << summaries.status();
    ASSERT_GE(summaries->size(), 2u);
    EXPECT_EQ(summaries->front().seq, last_seq);
    EXPECT_FALSE(summaries->front().valid);
    EXPECT_FALSE(summaries->front().error.empty());
    EXPECT_TRUE((*summaries)[1].valid);

    RecoverAndCheck(dir, &queue, expected, 3);
  }
}

// The checkpoint barrier fires per batch INSIDE AdvanceTo, so falling
// back past the final generation can restore a mid-batch cut: the clock
// sits at its last evaluated instant while later instants of the same
// AdvanceTo already ran (and were lost with the newer generation). With
// every event already committed there is no queue backlog, so only the
// interrupted-batch catch-up inside RecoverAll (Drain to the restored
// horizon) can produce the missing suffix — this pins it.
TEST_F(CheckpointRecoveryTest, MidBatchRestoreCompletesInterruptedBatch) {
  const TimeVaryingTable expected = Oracle();
  const std::string dir = FreshDir("midbatch");
  EventQueue queue;
  uint64_t last_seq = 0;
  RunVictim(dir, &queue, kRounds, nullptr, &last_seq);
  ASSERT_GT(last_seq, 1u);
  // Simulate a crash before the final manifest rename: the newest
  // generation never committed, the fallback is the barrier one batch
  // earlier in the same AdvanceTo.
  ASSERT_TRUE(fs::remove(dir + "/" + persist::ManifestFileName(last_seq)));
  auto fallback = persist::LoadCheckpoint(dir, last_seq - 1);
  ASSERT_TRUE(fallback.ok()) << fallback.status();
  ASSERT_EQ(fallback->engine.queries.size(), 1u);
  const size_t restored_evals =
      static_cast<size_t>(fallback->engine.queries[0].stats.evaluations);
  ASSERT_LT(restored_evals, expected.size());

  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  auto report =
      persist::RecoverAll(dir, &engine, &queue, {kConsumer}, nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->seq, last_seq - 1);
  EXPECT_EQ(report->replay_backlog.at(kConsumer), 0u);

  // Nothing left to replay — the missing evaluations must already have
  // fired during RecoverAll, on the restored window contents.
  StreamDriver driver(&queue, &engine, {});
  auto pumped = driver.PumpAll();
  ASSERT_TRUE(pumped.ok()) << pumped.status();
  EXPECT_EQ(*pumped, 0);
  ASSERT_TRUE(driver.Finish().ok());
  ASSERT_GT(sink.ResultsFor("q").size(), 0u);
  ExpectSuffixMatch(sink.ResultsFor("q"), expected, restored_evals);
}

// ---------------------------------------------------------------------------
// Driver resume under chaos (satellite): exactly-once with flaky
// transport and flaky sinks on both sides of the crash
// ---------------------------------------------------------------------------

TEST_F(CheckpointRecoveryTest, DriverResumeExactlyOnceUnderChaos) {
  uint64_t seed = 42;
  if (const char* env = std::getenv("SERAPH_FAULT_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  const TimeVaryingTable expected = Oracle();
  const std::string dir = FreshDir("chaos_" + std::to_string(seed));

  FlakyQueue queue(/*fail_every=*/3);
  FaultInjector& fi = FaultInjector::Global();
  fi.Seed(seed);
  fi.ArmProbability("driver.deliver", 0.2);

  CollectingSink collected_before;
  size_t accepted_before = 0;
  constexpr int kCrashPump = 3;
  {
    EngineOptions options;
    options.checkpoint_every = 1;
    ContinuousEngine engine(options);
    FlakySink flaky(&collected_before, /*fail_every=*/3);
    SinkPolicy sink_policy;
    sink_policy.retry.max_attempts = 4;
    engine.AddSink(&flaky, "chaos-sink", sink_policy);
    ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
    CheckpointOptions checkpoint_options;
    checkpoint_options.dir = dir;
    checkpoint_options.keep = 2;
    checkpoint_options.fsync = false;
    CheckpointManager manager(checkpoint_options);
    manager.BindQueue(kConsumer, &queue);
    manager.AttachTo(&engine);
    StreamDriver::Options driver_options;
    driver_options.poll_batch = 4;
    driver_options.delivery_retry.max_attempts = 3;
    driver_options.element_error_budget = 1000;
    StreamDriver driver(&queue, &engine, driver_options);
    for (int r = 0; r < kCrashPump; ++r) {
      ProduceRound(&queue, r);
      bool pumped_ok = false;
      for (int i = 0; i < 10'000 && !pumped_ok; ++i) {
        auto pumped = driver.PumpAll();
        if (pumped.ok()) {
          pumped_ok = true;
        } else {
          EXPECT_TRUE(pumped.status().IsTransient()) << pumped.status();
        }
      }
      ASSERT_TRUE(pumped_ok) << "chaos pump did not converge";
    }
    EXPECT_GT(manager.checkpoints_written(), 0);
    accepted_before = collected_before.ResultsFor("q").size();
    // Crash.
  }

  // The restart faces the same chaos (different draw) and must still
  // produce exactly the oracle suffix.
  fi.Reset();
  fi.Seed(seed + 1);
  fi.ArmProbability("driver.deliver", 0.2);

  ContinuousEngine engine;
  CollectingSink collected_after;
  FlakySink flaky(&collected_after, /*fail_every=*/3);
  SinkPolicy sink_policy;
  sink_policy.retry.max_attempts = 4;
  engine.AddSink(&flaky, "chaos-sink", sink_policy);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  auto report = persist::RecoverAll(dir, &engine, &queue, {kConsumer},
                                    nullptr);
  ASSERT_TRUE(report.ok()) << report.status();
  const size_t restored_evals =
      static_cast<size_t>(engine.StatsFor("q")->evaluations);

  StreamDriver::Options driver_options;
  driver_options.poll_batch = 4;
  driver_options.delivery_retry.max_attempts = 3;
  driver_options.element_error_budget = 1000;
  StreamDriver driver(&queue, &engine, driver_options);
  for (int r = kCrashPump; r < kRounds; ++r) {
    ProduceRound(&queue, r);
    bool pumped_ok = false;
    for (int i = 0; i < 10'000 && !pumped_ok; ++i) {
      auto pumped = driver.PumpAll();
      if (pumped.ok()) pumped_ok = true;
    }
    ASSERT_TRUE(pumped_ok) << "post-restore pump did not converge";
  }
  ASSERT_TRUE(driver.Finish().ok());

  // Exactly once into the engine: the restored prefix plus the replayed
  // suffix covers every produced element once.
  EXPECT_EQ(engine.stream().size(), static_cast<size_t>(kEvents));
  // The pre-crash run emitted at least the checkpointed prefix; recovery
  // resumes exactly at the restored evaluation count, so the committed
  // prefix plus the recovered output is the oracle with no gap and no
  // duplicate.
  ASSERT_GE(accepted_before, restored_evals);
  ExpectSuffixMatch(collected_after.ResultsFor("q"), expected,
                    restored_evals);
  const TimeVaryingTable& prefix = collected_before.ResultsFor("q");
  for (size_t i = 0; i < restored_evals; ++i) {
    EXPECT_EQ(io::ToJson(prefix.entries()[i].table.Canonicalized()),
              io::ToJson(expected.entries()[i].table.Canonicalized()));
  }
}

// ---------------------------------------------------------------------------
// Sharded fleet: one shard's checkpoint commit dies mid-run, the fleet
// still recovers to a consistent cut (docs/INTERNALS.md, "Sharded
// serving tier"). The shards end up on *different* generations — the
// victim falls back while the healthy shard restores its newest — and
// each replays its own ingest-log suffix, so per query the recovered
// output is exactly the oracle suffix: nothing replayed, nothing lost.
// ---------------------------------------------------------------------------

PropertyGraph Sided(const std::string& label, int64_t id) {
  return GraphBuilder()
      .Node(id, {label}, {{"id", Value::Int(id)}})
      .Build();
}

// Per-minute cadence so every per-event pump crosses a due instant —
// each pump is a batch barrier, and with checkpoint_every=1 each shard
// commits a generation per pump (what the armed fault below targets).
constexpr char kLeftQuery[] = R"(
  REGISTER QUERY q_left STARTING AT '1970-01-01T00:05'
  { MATCH (n:L) WITHIN PT30M FROM left EMIT n.id SNAPSHOT EVERY PT1M })";
constexpr char kRightQuery[] = R"(
  REGISTER QUERY q_right STARTING AT '1970-01-01T00:05'
  { MATCH (n:R) WITHIN PT30M FROM right EMIT n.id SNAPSHOT EVERY PT1M })";

constexpr int kShardedEvents = 18;
constexpr int kShardedCrashAt = 12;

PropertyGraph ShardedEvent(int i) {
  return (i % 2 == 0) ? Sided("L", 100 + i) : Sided("R", 200 + i);
}

void ConfigureFleet(shard::ShardedEngine* fleet) {
  // Two pinned sub-streams on different shards; the default broadcast
  // route stays, keeping both shard clocks moving on every element.
  fleet->AddRoute("left", HasLabel("L"), shard::FixedShard(0));
  fleet->AddRoute("right", HasLabel("R"), shard::FixedShard(1));
  ASSERT_TRUE(fleet->RegisterText(kLeftQuery).ok());
  ASSERT_TRUE(fleet->RegisterText(kRightQuery).ok());
}

TEST_F(CheckpointRecoveryTest, ShardedFleetRecoversWhenOneShardCommitDies) {
  // The uninterrupted fleet run (per-query timelines).
  CollectingSink oracle_sink;
  {
    shard::ShardedEngineOptions options;
    options.shards = 2;
    shard::ShardedEngine oracle(options);
    oracle.AddSink(&oracle_sink);
    ConfigureFleet(&oracle);
    for (int i = 0; i < kShardedEvents; ++i) {
      ASSERT_TRUE(oracle.Ingest(ShardedEvent(i), T(1 + i)).ok());
      ASSERT_TRUE(oracle.PumpAll().ok());
    }
    ASSERT_TRUE(oracle.Finish().ok());
  }
  ASSERT_GT(oracle_sink.ResultsFor("q_left").size(), 0u);
  ASSERT_GT(oracle_sink.ResultsFor("q_right").size(), 0u);

  for (const char* point : {"checkpoint.write", "checkpoint.rename"}) {
    SCOPED_TRACE(point);
    FaultInjector::Global().Reset();
    const std::string dir = FreshDir(std::string("sharded_") + point);
    shard::ShardedEngineOptions options;
    options.shards = 2;
    options.checkpoint_dir = dir;
    options.checkpoint_every = 1;  // Every batch barrier commits.
    options.checkpoint_fsync = false;

    // The victim: on the final pump before the "crash", exactly ONE
    // shard's commit dies at the fault point (ArmNext(1) kills the first
    // attempt; the other shard commits its newer generation).
    {
      shard::ShardedEngine victim(options);
      CollectingSink sink;
      victim.AddSink(&sink);
      ConfigureFleet(&victim);
      for (int i = 0; i < kShardedCrashAt; ++i) {
        if (i == kShardedCrashAt - 1) {
          FaultInjector::Global().ArmNext(point, 1);
        }
        ASSERT_TRUE(victim.Ingest(ShardedEvent(i), T(1 + i)).ok());
        ASSERT_TRUE(victim.PumpAll().ok());
      }
      int64_t failures = 0;
      for (int s = 0; s < 2; ++s) {
        const Counter* counter = victim.shard_engine(s)->metrics().FindCounter(
            "seraph_checkpoint_failures_total");
        if (counter != nullptr) failures += counter->value();
      }
      EXPECT_EQ(failures, 1) << point << ": expected exactly one shard's "
                                         "commit to die";
      // Crash: the fleet is abandoned with whatever the shard dirs hold.
    }
    FaultInjector::Global().Reset();

    // Recovery: fresh fleet, same routes, queries re-registered, then
    // Restore() — each shard from its own newest valid generation plus
    // its ingest-log suffix.
    shard::ShardedEngine recovered(options);
    CollectingSink sink;
    recovered.AddSink(&sink);
    ConfigureFleet(&recovered);
    ASSERT_TRUE(recovered.Restore().ok());
    std::map<std::string, size_t> restored_evals;
    for (const char* query : {"q_left", "q_right"}) {
      auto stats = recovered.StatsFor(query);
      ASSERT_TRUE(stats.ok());
      restored_evals[query] = static_cast<size_t>(stats->evaluations);
    }
    // Replay the backlog, then continue with the post-crash events.
    ASSERT_TRUE(recovered.PumpAll().ok());
    for (int i = kShardedCrashAt; i < kShardedEvents; ++i) {
      ASSERT_TRUE(recovered.Ingest(ShardedEvent(i), T(1 + i)).ok());
      ASSERT_TRUE(recovered.PumpAll().ok());
    }
    ASSERT_TRUE(recovered.Finish().ok());

    // Exactly-once ingest across the crash: every shard's broadcast
    // stream holds each produced element once.
    for (int s = 0; s < 2; ++s) {
      EXPECT_EQ(recovered.shard_engine(s)->stream().size(),
                static_cast<size_t>(kShardedEvents))
          << "shard " << s;
    }
    EXPECT_EQ(recovered.shard_engine(0)->stream("left").size(),
              static_cast<size_t>(kShardedEvents / 2));
    EXPECT_EQ(recovered.shard_engine(1)->stream("right").size(),
              static_cast<size_t>(kShardedEvents / 2));

    // Per query, the recovered output is exactly the oracle suffix from
    // the restored evaluation count — no replayed, no lost emissions,
    // even though the two shards restored different generations.
    for (const char* query : {"q_left", "q_right"}) {
      SCOPED_TRACE(query);
      ExpectSuffixMatch(sink.ResultsFor(query), oracle_sink.ResultsFor(query),
                        restored_evals[query]);
    }
  }
}

// ---------------------------------------------------------------------------
// Dead letters survive the crash (checkpointed and JSON round trip)
// ---------------------------------------------------------------------------

TEST_F(CheckpointRecoveryTest, DeadLettersAreCheckpointedAndRestored) {
  const std::string dir = FreshDir("dlq");
  EngineOptions options;
  options.checkpoint_every = 1;
  ContinuousEngine engine(options);
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(kCountQuery).ok());
  DeadLetterQueue dlq;
  dlq.AddEvaluationFailure("q", T(5), Status::EvaluationError("lost eval"));
  CheckpointOptions checkpoint_options;
  checkpoint_options.dir = dir;
  checkpoint_options.fsync = false;
  CheckpointManager manager(checkpoint_options);
  manager.BindDeadLetter(&dlq);
  ASSERT_TRUE(engine.Ingest(Item(1), T(1)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  ASSERT_TRUE(manager.Checkpoint(&engine).ok());

  auto image = persist::LoadLatestCheckpoint(dir);
  ASSERT_TRUE(image.ok()) << image.status();
  ASSERT_EQ(image->dead_letters.size(), 1u);
  DeadLetterQueue restored;
  ASSERT_TRUE(persist::RestoreDeadLetters(*image, &restored).ok());
  EXPECT_EQ(restored.evaluation_failures(), 1);
  EXPECT_EQ(restored.entries()[0].query, "q");
  EXPECT_EQ(restored.entries()[0].error,
            Status::EvaluationError("lost eval"));
}

TEST_F(CheckpointRecoveryTest, DeadLetterJsonRoundTripIsByteIdentical) {
  DeadLetterQueue dlq;
  TimeAnnotatedTable result;
  result.window = TimeInterval{T(0), T(5)};
  Table table(std::set<std::string>{"n.id", "who"});
  Record row;
  row.Set("n.id", Value::Int(3));
  row.Set("who", Value::String("ann \"the\" bold"));
  table.AppendUnchecked(std::move(row));
  Record row2;
  row2.Set("n.id", Value::Node(NodeId{4}));
  row2.Set("who", Value::Float(2.5));
  table.AppendUnchecked(std::move(row2));
  result.table = std::move(table);
  dlq.AddSinkResult("csv", "q", T(5), result,
                    Status::EvaluationError("schema mismatch"), 3);
  dlq.AddElement(kConsumer,
                 StreamElement{std::make_shared<const PropertyGraph>(
                                   GraphBuilder()
                                       .Node(1, {"X"})
                                       .Node(2, {"Y"})
                                       .Rel(1, 1, 2, "liked")
                                       .Build()),
                               T(9)},
                 Status::Unavailable("poison"), 2);
  dlq.AddEvaluationFailure("q2", T(10), Status::EvaluationError("div"));

  std::ostringstream first;
  ASSERT_TRUE(dlq.WriteJsonLines(&first).ok());

  DeadLetterQueue imported;
  std::istringstream in(first.str());
  ASSERT_TRUE(imported.ImportJsonLines(&in).ok());
  EXPECT_EQ(imported.size(), dlq.size());
  EXPECT_EQ(imported.sink_results(), dlq.sink_results());
  EXPECT_EQ(imported.elements(), dlq.elements());
  EXPECT_EQ(imported.evaluation_failures(), dlq.evaluation_failures());

  // export → import → re-export is byte-identical.
  std::ostringstream second;
  ASSERT_TRUE(imported.WriteJsonLines(&second).ok());
  EXPECT_EQ(first.str(), second.str());
}

TEST_F(CheckpointRecoveryTest, DeadLetterImportRejectsMalformedLines) {
  DeadLetterQueue dlq;
  std::istringstream in(
      "{\"kind\":\"evaluation\",\"source\":\"engine\",\"query\":\"q\","
      "\"at\":\"1970-01-01T00:05\",\"error\":\"OK\",\"attempts\":1}\n"
      "not json at all\n");
  Status imported = dlq.ImportJsonLines(&in);
  EXPECT_FALSE(imported.ok());
  EXPECT_NE(imported.message().find("line 2"), std::string::npos)
      << imported;
  // The valid first line was kept.
  EXPECT_EQ(dlq.size(), 1u);
  EXPECT_EQ(dlq.evaluation_failures(), 1);
}

}  // namespace
}  // namespace seraph
