// Workload generators: the exact Figure-1 stream and the scaled synthetic
// generators (determinism, schema, temporal shape).
#include <gtest/gtest.h>

#include "workloads/bike_sharing.h"
#include "workloads/network.h"
#include "workloads/pole.h"

namespace seraph {
namespace {

using workloads::Event;

TEST(RunningExampleStreamTest, FiveEventsWithPaperTimestamps) {
  std::vector<Event> events = workloads::BuildRunningExampleStream();
  ASSERT_EQ(events.size(), 5u);
  const char* expected[] = {"14:45", "15:00", "15:15", "15:20", "15:40"};
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].timestamp.ToClockString(), expected[i]);
  }
  // Per-event shapes from Figure 1.
  EXPECT_EQ(events[0].graph.num_relationships(), 1u);
  EXPECT_EQ(events[1].graph.num_relationships(), 3u);
  EXPECT_EQ(events[2].graph.num_relationships(), 1u);
  EXPECT_EQ(events[3].graph.num_relationships(), 2u);
  EXPECT_EQ(events[4].graph.num_relationships(), 1u);
}

TEST(RunningExampleStreamTest, EdgePropertiesMatchNarrative) {
  std::vector<Event> events = workloads::BuildRunningExampleStream();
  const RelData* r1 = events[0].graph.relationship(RelId{1});
  ASSERT_NE(r1, nullptr);
  EXPECT_EQ(r1->type, "rentedAt");
  EXPECT_EQ(r1->properties.at("user_id"), Value::Int(1234));
  EXPECT_EQ(r1->properties.at("val_time").AsDateTime().ToClockString(),
            "14:40");
  EXPECT_FALSE(r1->properties.contains("duration"));
  const RelData* r2 = events[1].graph.relationship(RelId{2});
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r2->type, "returnedAt");
  EXPECT_EQ(r2->properties.at("duration"), Value::Int(15));
}

TEST(BikeSharingGeneratorTest, DeterministicForSeed) {
  workloads::BikeSharingConfig config;
  config.num_events = 12;
  auto a = workloads::GenerateBikeSharingStream(config);
  auto b = workloads::GenerateBikeSharingStream(config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].graph, b[i].graph);
  }
  config.seed = 43;
  auto c = workloads::GenerateBikeSharingStream(config);
  bool any_diff = c.size() != a.size();
  for (size_t i = 0; !any_diff && i < std::min(a.size(), c.size()); ++i) {
    any_diff = !(a[i].graph == c[i].graph);
  }
  EXPECT_TRUE(any_diff);
}

TEST(BikeSharingGeneratorTest, SchemaMatchesRunningExample) {
  workloads::BikeSharingConfig config;
  config.num_events = 12;
  auto events = workloads::GenerateBikeSharingStream(config);
  ASSERT_FALSE(events.empty());
  bool saw_rental = false, saw_return = false;
  for (const Event& e : events) {
    for (RelId id : e.graph.RelationshipIds()) {
      const RelData* rel = e.graph.relationship(id);
      ASSERT_TRUE(rel->type == "rentedAt" || rel->type == "returnedAt");
      EXPECT_TRUE(rel->properties.contains("user_id"));
      EXPECT_TRUE(rel->properties.contains("val_time"));
      if (rel->type == "rentedAt") {
        saw_rental = true;
        EXPECT_FALSE(rel->properties.contains("duration"));
      } else {
        saw_return = true;
        EXPECT_TRUE(rel->properties.contains("duration"));
      }
      EXPECT_TRUE(e.graph.node(rel->src)->labels.contains("Bike"));
      EXPECT_TRUE(e.graph.node(rel->trg)->labels.contains("Station"));
    }
  }
  EXPECT_TRUE(saw_rental);
  EXPECT_TRUE(saw_return);
}

TEST(BikeSharingGeneratorTest, TimestampsMonotoneAndBatched) {
  workloads::BikeSharingConfig config;
  config.num_events = 20;
  auto events = workloads::GenerateBikeSharingStream(config);
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].timestamp, events[i].timestamp);
  }
  // Every event timestamp lies on the batch grid.
  for (const Event& e : events) {
    EXPECT_EQ((e.timestamp.millis() - config.start.millis()) %
                  config.event_period.millis(),
              0);
  }
}

TEST(BikeSharingGeneratorTest, FraudFractionControlsTrickUsers) {
  workloads::BikeSharingConfig honest;
  honest.fraud_fraction = 0.0;
  honest.num_events = 24;
  // With no fraud users, no sub-20-minute back-to-back chains by
  // construction of the honest duration distribution (rentals last
  // >= 10 minutes and users idle >= 5 minutes between rides; chains with
  // < 5-minute gaps only come from trick users).
  auto events = workloads::GenerateBikeSharingStream(honest);
  ASSERT_FALSE(events.empty());
}

TEST(NetworkGeneratorTest, TopologyShape) {
  workloads::NetworkConfig config;
  config.num_ticks = 3;
  config.failure_probability = 0.0;
  auto events = workloads::GenerateNetworkStream(config);
  ASSERT_EQ(events.size(), 3u);
  const PropertyGraph& g = events[0].graph;
  EXPECT_EQ(g.NodesWithLabel("Rack").size(),
            static_cast<size_t>(config.num_racks));
  EXPECT_EQ(g.NodesWithLabel("Router").size(), 1u);
  EXPECT_EQ(g.NodesWithLabel("Switch").size(),
            static_cast<size_t>(config.layers * config.switches_per_layer));
  // Each tick is a disjoint copy: different node ids per tick.
  EXPECT_EQ(events[1].graph.NodesWithLabel("Router").size(), 1u);
  EXPECT_NE(events[0].graph.NodeIds()[0], events[1].graph.NodeIds()[0]);
}

TEST(NetworkGeneratorTest, FailuresRemovePrimaryUplinks) {
  workloads::NetworkConfig none;
  none.num_ticks = 5;
  none.failure_probability = 0.0;
  workloads::NetworkConfig all = none;
  all.failure_probability = 1.0;
  auto healthy = workloads::GenerateNetworkStream(none);
  auto broken = workloads::GenerateNetworkStream(all);
  for (size_t i = 0; i < healthy.size(); ++i) {
    EXPECT_EQ(healthy[i].graph.num_relationships() -
                  broken[i].graph.num_relationships(),
              static_cast<size_t>(none.num_racks));
  }
}

TEST(PoleGeneratorTest, SightingsAndCrimes) {
  workloads::PoleConfig config;
  config.num_events = 10;
  config.crime_probability = 1.0;
  auto events = workloads::GeneratePoleStream(config);
  ASSERT_EQ(events.size(), 10u);
  for (const Event& e : events) {
    EXPECT_EQ(e.graph.RelationshipsWithType("OCCURRED_AT").size(), 1u);
    EXPECT_EQ(e.graph.RelationshipsWithType("PRESENT_AT").size(),
              static_cast<size_t>(config.sightings_per_event));
    EXPECT_EQ(e.graph.NodesWithLabel("Crime").size(), 1u);
  }
}

TEST(PoleGeneratorTest, SightingTimesInsideBatch) {
  workloads::PoleConfig config;
  config.num_events = 5;
  auto events = workloads::GeneratePoleStream(config);
  for (const Event& e : events) {
    for (RelId id : e.graph.RelationshipsWithType("PRESENT_AT")) {
      Timestamp seen =
          e.graph.relationship(id)->properties.at("time").AsDateTime();
      EXPECT_LE(seen, e.timestamp);
      EXPECT_GT(seen, e.timestamp - config.event_period);
    }
  }
}

}  // namespace
}  // namespace seraph
