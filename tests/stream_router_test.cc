// Logical sub-stream partitioning (§8 (ii)) via StreamRouter.
#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "seraph/stream_router.h"

namespace seraph {
namespace {

Timestamp T(int64_t minutes) { return Timestamp::FromMillis(minutes * 60'000); }

std::shared_ptr<const PropertyGraph> Rental(int64_t id, int64_t region) {
  return std::make_shared<const PropertyGraph>(
      GraphBuilder()
          .Node(id, {"Bike"}, {{"id", Value::Int(id)}})
          .Node(1000 + region, {"Station"},
                {{"region", Value::Int(region)}})
          .Rel(id, id, 1000 + region, "rentedAt")
          .Build());
}

std::shared_ptr<const PropertyGraph> Return(int64_t id, int64_t region) {
  return std::make_shared<const PropertyGraph>(
      GraphBuilder()
          .Node(id, {"Bike"}, {{"id", Value::Int(id)}})
          .Node(1000 + region, {"Station"},
                {{"region", Value::Int(region)}})
          .Rel(100 + id, id, 1000 + region, "returnedAt")
          .Build());
}

TEST(StreamRouterTest, RoutesByRelationshipType) {
  ContinuousEngine engine;
  StreamRouter router;
  router.AddRoute("rentals", HasRelationshipType("rentedAt"));
  router.AddRoute("returns", HasRelationshipType("returnedAt"));
  router.AddRoute("all", AcceptAll());

  auto d1 = router.Route(&engine, Rental(1, 1), T(1));
  ASSERT_TRUE(d1.ok());
  EXPECT_EQ(*d1, 2);  // rentals + all.
  auto d2 = router.Route(&engine, Return(1, 1), T(2));
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(*d2, 2);  // returns + all.

  EXPECT_EQ(engine.stream("rentals").size(), 1u);
  EXPECT_EQ(engine.stream("returns").size(), 1u);
  EXPECT_EQ(engine.stream("all").size(), 2u);
  EXPECT_EQ(engine.stream().size(), 0u);  // Default stream untouched.
}

TEST(StreamRouterTest, PartitionByPropertyValue) {
  ContinuousEngine engine;
  StreamRouter router;
  router.AddRoute("north", NodePropertyEquals("region", Value::Int(1)));
  router.AddRoute("south", NodePropertyEquals("region", Value::Int(2)));
  ASSERT_TRUE(router.Route(&engine, Rental(1, 1), T(1)).ok());
  ASSERT_TRUE(router.Route(&engine, Rental(2, 2), T(2)).ok());
  ASSERT_TRUE(router.Route(&engine, Rental(3, 1), T(3)).ok());
  EXPECT_EQ(engine.stream("north").size(), 2u);
  EXPECT_EQ(engine.stream("south").size(), 1u);
}

TEST(StreamRouterTest, RoutesByLabel) {
  ContinuousEngine engine;
  StreamRouter router;
  router.AddRoute("stations", HasLabel("Station"));
  router.AddRoute("people", HasLabel("Person"));
  auto delivered = router.Route(&engine, Rental(1, 1), T(1));
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 1);  // Stations only: rentals carry no Person.
  EXPECT_EQ(engine.stream("stations").size(), 1u);
  EXPECT_EQ(engine.stream("people").size(), 0u);
}

TEST(StreamRouterTest, UnmatchedEventsGoNowhere) {
  ContinuousEngine engine;
  StreamRouter router;
  router.AddRoute("labeled", HasLabel("Nope"));
  auto delivered = router.Route(&engine, Rental(1, 1), T(1));
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 0);
  EXPECT_EQ(router.dropped_total(), 1);
}

// The routing observability surface: BindMetrics exposes one
// seraph_router_routed_total{stream=...} counter per route — covering
// routes added before AND after the bind — plus the fleet-level
// seraph_router_dropped_total for events matching no route. All four
// predicate builders flow through the counters.
TEST(StreamRouterTest, BindMetricsCountsRoutedAndDropped) {
  ContinuousEngine engine;
  MetricsRegistry registry;
  StreamRouter router;
  router.AddRoute("rentals", HasRelationshipType("rentedAt"));  // Pre-bind.
  router.BindMetrics(&registry);
  router.AddRoute("north", NodePropertyEquals("region", Value::Int(1)));
  router.AddRoute("bikes", HasLabel("Bike"));
  router.AddRoute("", AcceptAll());  // Default stream → "<default>" label.

  // Rental(1, 1): rentals + north + bikes + default.
  ASSERT_TRUE(router.Route(&engine, Rental(1, 1), T(1)).ok());
  // Return(2, 2): bikes + default (wrong type, wrong region).
  ASSERT_TRUE(router.Route(&engine, Return(2, 2), T(2)).ok());

  auto count = [&](const std::string& stream) {
    const Counter* counter = registry.FindCounter(
        "seraph_router_routed_total", {{"stream", stream}});
    return counter == nullptr ? int64_t{-1} : counter->value();
  };
  EXPECT_EQ(count("rentals"), 1);
  EXPECT_EQ(count("north"), 1);
  EXPECT_EQ(count("bikes"), 2);
  EXPECT_EQ(count("<default>"), 2);
  // Every event matched something: no drops yet.
  const Counter* dropped =
      registry.FindCounter("seraph_router_dropped_total", {});
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value(), 0);

  // An event matching no route counts as dropped (the Station-only graph
  // has no Bike node, no rentedAt, and region 3).
  auto station_only = std::make_shared<const PropertyGraph>(
      GraphBuilder()
          .Node(2000, {"Depot"}, {{"region", Value::Int(3)}})
          .Build());
  StreamRouter strict;
  strict.BindMetrics(&registry);
  strict.AddRoute("rentals", HasRelationshipType("rentedAt"));
  auto delivered = strict.Route(&engine, station_only, T(3));
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(*delivered, 0);
  EXPECT_EQ(strict.dropped_total(), 1);
  EXPECT_EQ(dropped->value(), 1);
}

TEST(StreamRouterTest, PartitionedQueriesSeeOnlyTheirSubStream) {
  ContinuousEngine engine;
  CollectingSink sink;
  engine.AddSink(&sink);
  ASSERT_TRUE(engine.RegisterText(R"(
    REGISTER QUERY north_rentals STARTING AT '1970-01-01T00:05'
    {
      MATCH (b:Bike)-[r:rentedAt]->(s:Station) WITHIN PT30M FROM north
      EMIT b.id EVERY PT5M
    })")
                  .ok());
  StreamRouter router;
  router.AddRoute("north", NodePropertyEquals("region", Value::Int(1)));
  router.AddRoute("south", NodePropertyEquals("region", Value::Int(2)));
  ASSERT_TRUE(router.Route(&engine, Rental(1, 1), T(1)).ok());
  ASSERT_TRUE(router.Route(&engine, Rental(2, 2), T(2)).ok());
  ASSERT_TRUE(engine.AdvanceTo(T(5)).ok());
  auto result = sink.ResultAt("north_rentals", T(5));
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->table.size(), 1u);
  EXPECT_EQ(result->table.rows()[0].GetOrNull("b.id"), Value::Int(1));
}

}  // namespace
}  // namespace seraph
