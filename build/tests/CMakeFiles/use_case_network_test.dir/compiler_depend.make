# Empty compiler generated dependencies file for use_case_network_test.
# This may be replaced when dependencies are built.
