# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for window_semantics_ablation_test.
