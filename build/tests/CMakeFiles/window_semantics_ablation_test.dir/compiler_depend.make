# Empty compiler generated dependencies file for window_semantics_ablation_test.
# This may be replaced when dependencies are built.
