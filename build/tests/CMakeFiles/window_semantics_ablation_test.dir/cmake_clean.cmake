file(REMOVE_RECURSE
  "CMakeFiles/window_semantics_ablation_test.dir/window_semantics_ablation_test.cc.o"
  "CMakeFiles/window_semantics_ablation_test.dir/window_semantics_ablation_test.cc.o.d"
  "window_semantics_ablation_test"
  "window_semantics_ablation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_semantics_ablation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
