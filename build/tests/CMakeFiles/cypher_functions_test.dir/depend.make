# Empty dependencies file for cypher_functions_test.
# This may be replaced when dependencies are built.
