file(REMOVE_RECURSE
  "CMakeFiles/cypher_functions_test.dir/cypher_functions_test.cc.o"
  "CMakeFiles/cypher_functions_test.dir/cypher_functions_test.cc.o.d"
  "cypher_functions_test"
  "cypher_functions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_functions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
