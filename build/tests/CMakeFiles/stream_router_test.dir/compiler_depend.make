# Empty compiler generated dependencies file for stream_router_test.
# This may be replaced when dependencies are built.
