file(REMOVE_RECURSE
  "CMakeFiles/stream_router_test.dir/stream_router_test.cc.o"
  "CMakeFiles/stream_router_test.dir/stream_router_test.cc.o.d"
  "stream_router_test"
  "stream_router_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stream_router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
