# Empty dependencies file for snapshot_reducibility_test.
# This may be replaced when dependencies are built.
