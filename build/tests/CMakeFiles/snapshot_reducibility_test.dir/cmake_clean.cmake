file(REMOVE_RECURSE
  "CMakeFiles/snapshot_reducibility_test.dir/snapshot_reducibility_test.cc.o"
  "CMakeFiles/snapshot_reducibility_test.dir/snapshot_reducibility_test.cc.o.d"
  "snapshot_reducibility_test"
  "snapshot_reducibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_reducibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
