# Empty compiler generated dependencies file for graph_union_test.
# This may be replaced when dependencies are built.
