file(REMOVE_RECURSE
  "CMakeFiles/graph_union_test.dir/graph_union_test.cc.o"
  "CMakeFiles/graph_union_test.dir/graph_union_test.cc.o.d"
  "graph_union_test"
  "graph_union_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_union_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
