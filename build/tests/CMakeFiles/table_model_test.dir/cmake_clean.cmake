file(REMOVE_RECURSE
  "CMakeFiles/table_model_test.dir/table_model_test.cc.o"
  "CMakeFiles/table_model_test.dir/table_model_test.cc.o.d"
  "table_model_test"
  "table_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
