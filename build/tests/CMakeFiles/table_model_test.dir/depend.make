# Empty dependencies file for table_model_test.
# This may be replaced when dependencies are built.
