file(REMOVE_RECURSE
  "CMakeFiles/cypher_semantics_test.dir/cypher_semantics_test.cc.o"
  "CMakeFiles/cypher_semantics_test.dir/cypher_semantics_test.cc.o.d"
  "cypher_semantics_test"
  "cypher_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
