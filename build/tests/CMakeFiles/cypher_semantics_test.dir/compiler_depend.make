# Empty compiler generated dependencies file for cypher_semantics_test.
# This may be replaced when dependencies are built.
