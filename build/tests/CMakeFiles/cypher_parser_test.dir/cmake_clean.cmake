file(REMOVE_RECURSE
  "CMakeFiles/cypher_parser_test.dir/cypher_parser_test.cc.o"
  "CMakeFiles/cypher_parser_test.dir/cypher_parser_test.cc.o.d"
  "cypher_parser_test"
  "cypher_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
