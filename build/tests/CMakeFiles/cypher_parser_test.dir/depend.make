# Empty dependencies file for cypher_parser_test.
# This may be replaced when dependencies are built.
