# Empty dependencies file for report_policy_test.
# This may be replaced when dependencies are built.
