file(REMOVE_RECURSE
  "CMakeFiles/report_policy_test.dir/report_policy_test.cc.o"
  "CMakeFiles/report_policy_test.dir/report_policy_test.cc.o.d"
  "report_policy_test"
  "report_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/report_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
