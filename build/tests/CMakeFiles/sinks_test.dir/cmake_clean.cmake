file(REMOVE_RECURSE
  "CMakeFiles/sinks_test.dir/sinks_test.cc.o"
  "CMakeFiles/sinks_test.dir/sinks_test.cc.o.d"
  "sinks_test"
  "sinks_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sinks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
