# Empty dependencies file for sinks_test.
# This may be replaced when dependencies are built.
