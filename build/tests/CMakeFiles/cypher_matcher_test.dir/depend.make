# Empty dependencies file for cypher_matcher_test.
# This may be replaced when dependencies are built.
