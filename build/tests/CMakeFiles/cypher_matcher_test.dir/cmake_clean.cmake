file(REMOVE_RECURSE
  "CMakeFiles/cypher_matcher_test.dir/cypher_matcher_test.cc.o"
  "CMakeFiles/cypher_matcher_test.dir/cypher_matcher_test.cc.o.d"
  "cypher_matcher_test"
  "cypher_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
