# Empty dependencies file for cypher_expression_test.
# This may be replaced when dependencies are built.
