file(REMOVE_RECURSE
  "CMakeFiles/cypher_expression_test.dir/cypher_expression_test.cc.o"
  "CMakeFiles/cypher_expression_test.dir/cypher_expression_test.cc.o.d"
  "cypher_expression_test"
  "cypher_expression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_expression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
