# Empty dependencies file for use_case_crime_test.
# This may be replaced when dependencies are built.
