# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for use_case_crime_test.
