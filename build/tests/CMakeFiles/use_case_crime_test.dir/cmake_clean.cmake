file(REMOVE_RECURSE
  "CMakeFiles/use_case_crime_test.dir/use_case_crime_test.cc.o"
  "CMakeFiles/use_case_crime_test.dir/use_case_crime_test.cc.o.d"
  "use_case_crime_test"
  "use_case_crime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/use_case_crime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
