file(REMOVE_RECURSE
  "CMakeFiles/continuous_engine_test.dir/continuous_engine_test.cc.o"
  "CMakeFiles/continuous_engine_test.dir/continuous_engine_test.cc.o.d"
  "continuous_engine_test"
  "continuous_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
