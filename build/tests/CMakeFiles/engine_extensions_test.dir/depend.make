# Empty dependencies file for engine_extensions_test.
# This may be replaced when dependencies are built.
