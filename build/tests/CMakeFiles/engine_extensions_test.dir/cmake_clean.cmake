file(REMOVE_RECURSE
  "CMakeFiles/engine_extensions_test.dir/engine_extensions_test.cc.o"
  "CMakeFiles/engine_extensions_test.dir/engine_extensions_test.cc.o.d"
  "engine_extensions_test"
  "engine_extensions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_extensions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
