# Empty compiler generated dependencies file for infrastructure_test.
# This may be replaced when dependencies are built.
