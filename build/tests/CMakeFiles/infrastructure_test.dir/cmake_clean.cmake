file(REMOVE_RECURSE
  "CMakeFiles/infrastructure_test.dir/infrastructure_test.cc.o"
  "CMakeFiles/infrastructure_test.dir/infrastructure_test.cc.o.d"
  "infrastructure_test"
  "infrastructure_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/infrastructure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
