file(REMOVE_RECURSE
  "CMakeFiles/cypher_lexer_test.dir/cypher_lexer_test.cc.o"
  "CMakeFiles/cypher_lexer_test.dir/cypher_lexer_test.cc.o.d"
  "cypher_lexer_test"
  "cypher_lexer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cypher_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
