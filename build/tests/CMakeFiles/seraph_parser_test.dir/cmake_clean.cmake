file(REMOVE_RECURSE
  "CMakeFiles/seraph_parser_test.dir/seraph_parser_test.cc.o"
  "CMakeFiles/seraph_parser_test.dir/seraph_parser_test.cc.o.d"
  "seraph_parser_test"
  "seraph_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
