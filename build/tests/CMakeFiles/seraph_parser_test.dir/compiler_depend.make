# Empty compiler generated dependencies file for seraph_parser_test.
# This may be replaced when dependencies are built.
