
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/seraph/continuous_engine.cc" "src/seraph/CMakeFiles/seraph_engine.dir/continuous_engine.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/continuous_engine.cc.o.d"
  "/root/repo/src/seraph/polling_baseline.cc" "src/seraph/CMakeFiles/seraph_engine.dir/polling_baseline.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/polling_baseline.cc.o.d"
  "/root/repo/src/seraph/seraph_parser.cc" "src/seraph/CMakeFiles/seraph_engine.dir/seraph_parser.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/seraph_parser.cc.o.d"
  "/root/repo/src/seraph/seraph_query.cc" "src/seraph/CMakeFiles/seraph_engine.dir/seraph_query.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/seraph_query.cc.o.d"
  "/root/repo/src/seraph/sinks.cc" "src/seraph/CMakeFiles/seraph_engine.dir/sinks.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/sinks.cc.o.d"
  "/root/repo/src/seraph/stream_driver.cc" "src/seraph/CMakeFiles/seraph_engine.dir/stream_driver.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/stream_driver.cc.o.d"
  "/root/repo/src/seraph/stream_router.cc" "src/seraph/CMakeFiles/seraph_engine.dir/stream_router.cc.o" "gcc" "src/seraph/CMakeFiles/seraph_engine.dir/stream_router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cypher/CMakeFiles/seraph_cypher.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/seraph_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/seraph_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/seraph_table.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/seraph_value.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/seraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
