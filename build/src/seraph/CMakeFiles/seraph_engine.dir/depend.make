# Empty dependencies file for seraph_engine.
# This may be replaced when dependencies are built.
