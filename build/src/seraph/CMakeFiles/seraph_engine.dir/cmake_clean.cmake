file(REMOVE_RECURSE
  "CMakeFiles/seraph_engine.dir/continuous_engine.cc.o"
  "CMakeFiles/seraph_engine.dir/continuous_engine.cc.o.d"
  "CMakeFiles/seraph_engine.dir/polling_baseline.cc.o"
  "CMakeFiles/seraph_engine.dir/polling_baseline.cc.o.d"
  "CMakeFiles/seraph_engine.dir/seraph_parser.cc.o"
  "CMakeFiles/seraph_engine.dir/seraph_parser.cc.o.d"
  "CMakeFiles/seraph_engine.dir/seraph_query.cc.o"
  "CMakeFiles/seraph_engine.dir/seraph_query.cc.o.d"
  "CMakeFiles/seraph_engine.dir/sinks.cc.o"
  "CMakeFiles/seraph_engine.dir/sinks.cc.o.d"
  "CMakeFiles/seraph_engine.dir/stream_driver.cc.o"
  "CMakeFiles/seraph_engine.dir/stream_driver.cc.o.d"
  "CMakeFiles/seraph_engine.dir/stream_router.cc.o"
  "CMakeFiles/seraph_engine.dir/stream_router.cc.o.d"
  "libseraph_engine.a"
  "libseraph_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
