file(REMOVE_RECURSE
  "libseraph_engine.a"
)
