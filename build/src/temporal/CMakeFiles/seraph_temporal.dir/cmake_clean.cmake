file(REMOVE_RECURSE
  "CMakeFiles/seraph_temporal.dir/duration.cc.o"
  "CMakeFiles/seraph_temporal.dir/duration.cc.o.d"
  "CMakeFiles/seraph_temporal.dir/timestamp.cc.o"
  "CMakeFiles/seraph_temporal.dir/timestamp.cc.o.d"
  "libseraph_temporal.a"
  "libseraph_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
