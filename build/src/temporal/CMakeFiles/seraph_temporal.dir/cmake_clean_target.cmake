file(REMOVE_RECURSE
  "libseraph_temporal.a"
)
