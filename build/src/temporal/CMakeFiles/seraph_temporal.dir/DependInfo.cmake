
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/temporal/duration.cc" "src/temporal/CMakeFiles/seraph_temporal.dir/duration.cc.o" "gcc" "src/temporal/CMakeFiles/seraph_temporal.dir/duration.cc.o.d"
  "/root/repo/src/temporal/timestamp.cc" "src/temporal/CMakeFiles/seraph_temporal.dir/timestamp.cc.o" "gcc" "src/temporal/CMakeFiles/seraph_temporal.dir/timestamp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
