# Empty dependencies file for seraph_temporal.
# This may be replaced when dependencies are built.
