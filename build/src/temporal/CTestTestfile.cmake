# CMake generated Testfile for 
# Source directory: /root/repo/src/temporal
# Build directory: /root/repo/build/src/temporal
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
