file(REMOVE_RECURSE
  "CMakeFiles/seraph_value.dir/value.cc.o"
  "CMakeFiles/seraph_value.dir/value.cc.o.d"
  "libseraph_value.a"
  "libseraph_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
