file(REMOVE_RECURSE
  "libseraph_value.a"
)
