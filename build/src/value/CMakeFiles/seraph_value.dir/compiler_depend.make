# Empty compiler generated dependencies file for seraph_value.
# This may be replaced when dependencies are built.
