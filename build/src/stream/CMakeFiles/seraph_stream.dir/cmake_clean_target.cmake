file(REMOVE_RECURSE
  "libseraph_stream.a"
)
