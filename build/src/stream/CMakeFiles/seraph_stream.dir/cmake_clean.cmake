file(REMOVE_RECURSE
  "CMakeFiles/seraph_stream.dir/event_queue.cc.o"
  "CMakeFiles/seraph_stream.dir/event_queue.cc.o.d"
  "CMakeFiles/seraph_stream.dir/graph_stream.cc.o"
  "CMakeFiles/seraph_stream.dir/graph_stream.cc.o.d"
  "CMakeFiles/seraph_stream.dir/reorder_buffer.cc.o"
  "CMakeFiles/seraph_stream.dir/reorder_buffer.cc.o.d"
  "CMakeFiles/seraph_stream.dir/snapshot.cc.o"
  "CMakeFiles/seraph_stream.dir/snapshot.cc.o.d"
  "CMakeFiles/seraph_stream.dir/window.cc.o"
  "CMakeFiles/seraph_stream.dir/window.cc.o.d"
  "libseraph_stream.a"
  "libseraph_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
