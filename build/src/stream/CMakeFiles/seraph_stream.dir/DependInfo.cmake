
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/event_queue.cc" "src/stream/CMakeFiles/seraph_stream.dir/event_queue.cc.o" "gcc" "src/stream/CMakeFiles/seraph_stream.dir/event_queue.cc.o.d"
  "/root/repo/src/stream/graph_stream.cc" "src/stream/CMakeFiles/seraph_stream.dir/graph_stream.cc.o" "gcc" "src/stream/CMakeFiles/seraph_stream.dir/graph_stream.cc.o.d"
  "/root/repo/src/stream/reorder_buffer.cc" "src/stream/CMakeFiles/seraph_stream.dir/reorder_buffer.cc.o" "gcc" "src/stream/CMakeFiles/seraph_stream.dir/reorder_buffer.cc.o.d"
  "/root/repo/src/stream/snapshot.cc" "src/stream/CMakeFiles/seraph_stream.dir/snapshot.cc.o" "gcc" "src/stream/CMakeFiles/seraph_stream.dir/snapshot.cc.o.d"
  "/root/repo/src/stream/window.cc" "src/stream/CMakeFiles/seraph_stream.dir/window.cc.o" "gcc" "src/stream/CMakeFiles/seraph_stream.dir/window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seraph_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/seraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/seraph_value.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
