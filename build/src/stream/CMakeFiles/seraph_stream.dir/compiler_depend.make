# Empty compiler generated dependencies file for seraph_stream.
# This may be replaced when dependencies are built.
