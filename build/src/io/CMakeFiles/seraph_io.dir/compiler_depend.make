# Empty compiler generated dependencies file for seraph_io.
# This may be replaced when dependencies are built.
