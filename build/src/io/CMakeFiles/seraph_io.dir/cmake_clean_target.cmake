file(REMOVE_RECURSE
  "libseraph_io.a"
)
