file(REMOVE_RECURSE
  "CMakeFiles/seraph_io.dir/graph_text.cc.o"
  "CMakeFiles/seraph_io.dir/graph_text.cc.o.d"
  "CMakeFiles/seraph_io.dir/json.cc.o"
  "CMakeFiles/seraph_io.dir/json.cc.o.d"
  "libseraph_io.a"
  "libseraph_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
