# Empty dependencies file for seraph_graph.
# This may be replaced when dependencies are built.
