file(REMOVE_RECURSE
  "CMakeFiles/seraph_graph.dir/algorithms.cc.o"
  "CMakeFiles/seraph_graph.dir/algorithms.cc.o.d"
  "CMakeFiles/seraph_graph.dir/graph_union.cc.o"
  "CMakeFiles/seraph_graph.dir/graph_union.cc.o.d"
  "CMakeFiles/seraph_graph.dir/property_graph.cc.o"
  "CMakeFiles/seraph_graph.dir/property_graph.cc.o.d"
  "libseraph_graph.a"
  "libseraph_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
