file(REMOVE_RECURSE
  "libseraph_graph.a"
)
