# Empty compiler generated dependencies file for seraph_workloads.
# This may be replaced when dependencies are built.
