file(REMOVE_RECURSE
  "CMakeFiles/seraph_workloads.dir/bike_sharing.cc.o"
  "CMakeFiles/seraph_workloads.dir/bike_sharing.cc.o.d"
  "CMakeFiles/seraph_workloads.dir/network.cc.o"
  "CMakeFiles/seraph_workloads.dir/network.cc.o.d"
  "CMakeFiles/seraph_workloads.dir/pole.cc.o"
  "CMakeFiles/seraph_workloads.dir/pole.cc.o.d"
  "libseraph_workloads.a"
  "libseraph_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
