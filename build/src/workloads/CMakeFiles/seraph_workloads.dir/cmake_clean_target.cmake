file(REMOVE_RECURSE
  "libseraph_workloads.a"
)
