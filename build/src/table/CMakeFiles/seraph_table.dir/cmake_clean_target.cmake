file(REMOVE_RECURSE
  "libseraph_table.a"
)
