file(REMOVE_RECURSE
  "CMakeFiles/seraph_table.dir/record.cc.o"
  "CMakeFiles/seraph_table.dir/record.cc.o.d"
  "CMakeFiles/seraph_table.dir/table.cc.o"
  "CMakeFiles/seraph_table.dir/table.cc.o.d"
  "CMakeFiles/seraph_table.dir/time_table.cc.o"
  "CMakeFiles/seraph_table.dir/time_table.cc.o.d"
  "libseraph_table.a"
  "libseraph_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
