# Empty compiler generated dependencies file for seraph_table.
# This may be replaced when dependencies are built.
