# Empty compiler generated dependencies file for seraph_cypher.
# This may be replaced when dependencies are built.
