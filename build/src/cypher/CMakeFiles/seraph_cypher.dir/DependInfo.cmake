
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cypher/ast.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/ast.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/ast.cc.o.d"
  "/root/repo/src/cypher/eval.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/eval.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/eval.cc.o.d"
  "/root/repo/src/cypher/executor.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/executor.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/executor.cc.o.d"
  "/root/repo/src/cypher/functions.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/functions.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/functions.cc.o.d"
  "/root/repo/src/cypher/lexer.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/lexer.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/lexer.cc.o.d"
  "/root/repo/src/cypher/matcher.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/matcher.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/matcher.cc.o.d"
  "/root/repo/src/cypher/parser.cc" "src/cypher/CMakeFiles/seraph_cypher.dir/parser.cc.o" "gcc" "src/cypher/CMakeFiles/seraph_cypher.dir/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/seraph_common.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/seraph_value.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/seraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/seraph_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
