file(REMOVE_RECURSE
  "libseraph_cypher.a"
)
