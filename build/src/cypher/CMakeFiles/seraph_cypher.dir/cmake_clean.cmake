file(REMOVE_RECURSE
  "CMakeFiles/seraph_cypher.dir/ast.cc.o"
  "CMakeFiles/seraph_cypher.dir/ast.cc.o.d"
  "CMakeFiles/seraph_cypher.dir/eval.cc.o"
  "CMakeFiles/seraph_cypher.dir/eval.cc.o.d"
  "CMakeFiles/seraph_cypher.dir/executor.cc.o"
  "CMakeFiles/seraph_cypher.dir/executor.cc.o.d"
  "CMakeFiles/seraph_cypher.dir/functions.cc.o"
  "CMakeFiles/seraph_cypher.dir/functions.cc.o.d"
  "CMakeFiles/seraph_cypher.dir/lexer.cc.o"
  "CMakeFiles/seraph_cypher.dir/lexer.cc.o.d"
  "CMakeFiles/seraph_cypher.dir/matcher.cc.o"
  "CMakeFiles/seraph_cypher.dir/matcher.cc.o.d"
  "CMakeFiles/seraph_cypher.dir/parser.cc.o"
  "CMakeFiles/seraph_cypher.dir/parser.cc.o.d"
  "libseraph_cypher.a"
  "libseraph_cypher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_cypher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
