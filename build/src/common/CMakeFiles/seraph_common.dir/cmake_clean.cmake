file(REMOVE_RECURSE
  "CMakeFiles/seraph_common.dir/logging.cc.o"
  "CMakeFiles/seraph_common.dir/logging.cc.o.d"
  "CMakeFiles/seraph_common.dir/metrics.cc.o"
  "CMakeFiles/seraph_common.dir/metrics.cc.o.d"
  "CMakeFiles/seraph_common.dir/status.cc.o"
  "CMakeFiles/seraph_common.dir/status.cc.o.d"
  "CMakeFiles/seraph_common.dir/strings.cc.o"
  "CMakeFiles/seraph_common.dir/strings.cc.o.d"
  "libseraph_common.a"
  "libseraph_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
