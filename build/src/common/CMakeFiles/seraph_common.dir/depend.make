# Empty dependencies file for seraph_common.
# This may be replaced when dependencies are built.
