file(REMOVE_RECURSE
  "libseraph_common.a"
)
