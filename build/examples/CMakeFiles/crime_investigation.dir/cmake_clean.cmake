file(REMOVE_RECURSE
  "CMakeFiles/crime_investigation.dir/crime_investigation.cc.o"
  "CMakeFiles/crime_investigation.dir/crime_investigation.cc.o.d"
  "crime_investigation"
  "crime_investigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crime_investigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
