# Empty dependencies file for crime_investigation.
# This may be replaced when dependencies are built.
