file(REMOVE_RECURSE
  "CMakeFiles/partitioned_fleet.dir/partitioned_fleet.cc.o"
  "CMakeFiles/partitioned_fleet.dir/partitioned_fleet.cc.o.d"
  "partitioned_fleet"
  "partitioned_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioned_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
