# Empty compiler generated dependencies file for partitioned_fleet.
# This may be replaced when dependencies are built.
