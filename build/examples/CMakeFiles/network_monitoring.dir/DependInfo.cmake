
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/network_monitoring.cc" "examples/CMakeFiles/network_monitoring.dir/network_monitoring.cc.o" "gcc" "examples/CMakeFiles/network_monitoring.dir/network_monitoring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/seraph/CMakeFiles/seraph_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/seraph_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/cypher/CMakeFiles/seraph_cypher.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/seraph_io.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/seraph_table.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/seraph_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/seraph_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/seraph_value.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/seraph_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/seraph_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
