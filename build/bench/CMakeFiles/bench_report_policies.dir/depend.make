# Empty dependencies file for bench_report_policies.
# This may be replaced when dependencies are built.
