file(REMOVE_RECURSE
  "CMakeFiles/bench_report_policies.dir/bench_report_policies.cc.o"
  "CMakeFiles/bench_report_policies.dir/bench_report_policies.cc.o.d"
  "bench_report_policies"
  "bench_report_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_report_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
