file(REMOVE_RECURSE
  "CMakeFiles/bench_use_cases.dir/bench_use_cases.cc.o"
  "CMakeFiles/bench_use_cases.dir/bench_use_cases.cc.o.d"
  "bench_use_cases"
  "bench_use_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_use_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
