# Empty compiler generated dependencies file for bench_snapshot_union.
# This may be replaced when dependencies are built.
