file(REMOVE_RECURSE
  "CMakeFiles/bench_snapshot_union.dir/bench_snapshot_union.cc.o"
  "CMakeFiles/bench_snapshot_union.dir/bench_snapshot_union.cc.o.d"
  "bench_snapshot_union"
  "bench_snapshot_union.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_snapshot_union.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
