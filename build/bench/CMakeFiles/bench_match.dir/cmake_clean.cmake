file(REMOVE_RECURSE
  "CMakeFiles/bench_match.dir/bench_match.cc.o"
  "CMakeFiles/bench_match.dir/bench_match.cc.o.d"
  "bench_match"
  "bench_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
