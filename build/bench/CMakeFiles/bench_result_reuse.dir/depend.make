# Empty dependencies file for bench_result_reuse.
# This may be replaced when dependencies are built.
