file(REMOVE_RECURSE
  "CMakeFiles/bench_result_reuse.dir/bench_result_reuse.cc.o"
  "CMakeFiles/bench_result_reuse.dir/bench_result_reuse.cc.o.d"
  "bench_result_reuse"
  "bench_result_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_result_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
