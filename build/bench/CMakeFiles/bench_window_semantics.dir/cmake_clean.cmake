file(REMOVE_RECURSE
  "CMakeFiles/bench_window_semantics.dir/bench_window_semantics.cc.o"
  "CMakeFiles/bench_window_semantics.dir/bench_window_semantics.cc.o.d"
  "bench_window_semantics"
  "bench_window_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
