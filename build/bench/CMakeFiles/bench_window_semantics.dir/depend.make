# Empty dependencies file for bench_window_semantics.
# This may be replaced when dependencies are built.
