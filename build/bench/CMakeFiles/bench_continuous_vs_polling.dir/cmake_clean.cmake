file(REMOVE_RECURSE
  "CMakeFiles/bench_continuous_vs_polling.dir/bench_continuous_vs_polling.cc.o"
  "CMakeFiles/bench_continuous_vs_polling.dir/bench_continuous_vs_polling.cc.o.d"
  "bench_continuous_vs_polling"
  "bench_continuous_vs_polling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_continuous_vs_polling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
