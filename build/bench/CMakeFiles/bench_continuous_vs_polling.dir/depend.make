# Empty dependencies file for bench_continuous_vs_polling.
# This may be replaced when dependencies are built.
