# Empty dependencies file for bench_incremental_window.
# This may be replaced when dependencies are built.
