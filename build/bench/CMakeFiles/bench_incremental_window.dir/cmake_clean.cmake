file(REMOVE_RECURSE
  "CMakeFiles/bench_incremental_window.dir/bench_incremental_window.cc.o"
  "CMakeFiles/bench_incremental_window.dir/bench_incremental_window.cc.o.d"
  "bench_incremental_window"
  "bench_incremental_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_incremental_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
