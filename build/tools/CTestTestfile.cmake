# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(seraph_run_smoke "/root/repo/build/tools/seraph_run" "/root/repo/tools/testdata/student_trick.seraph" "/root/repo/tools/testdata/figure1_events.log" "--stats")
set_tests_properties(seraph_run_smoke PROPERTIES  PASS_REGULAR_EXPRESSION "5678" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(seraph_run_csv "/root/repo/build/tools/seraph_run" "/root/repo/tools/testdata/student_trick.seraph" "/root/repo/tools/testdata/figure1_events.log" "--csv")
set_tests_properties(seraph_run_csv PROPERTIES  PASS_REGULAR_EXPRESSION "query,evaluation_time,win_start,win_end" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(seraph_run_usage "/root/repo/build/tools/seraph_run" "--help")
set_tests_properties(seraph_run_usage PROPERTIES  PASS_REGULAR_EXPRESSION "usage:" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;18;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(seraph_run_json "/root/repo/build/tools/seraph_run" "/root/repo/tools/testdata/student_trick.seraph" "/root/repo/tools/testdata/figure1_events.log" "--json")
set_tests_properties(seraph_run_json PROPERTIES  PASS_REGULAR_EXPRESSION "\"query\":\"student_trick\"" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;22;add_test;/root/repo/tools/CMakeLists.txt;0;")
