file(REMOVE_RECURSE
  "CMakeFiles/seraph_run.dir/seraph_run.cc.o"
  "CMakeFiles/seraph_run.dir/seraph_run.cc.o.d"
  "seraph_run"
  "seraph_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seraph_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
