# Empty dependencies file for seraph_run.
# This may be replaced when dependencies are built.
